//! The reusable HTTP service core: acceptor, bounded admission queue,
//! fixed worker pool, keep-alive loop, graceful drain.
//!
//! PR 5 built this machinery directly into the corpus server; the
//! scatter-gather router needs exactly the same skeleton (same
//! admission semantics, same drain contract, same metrics) around a
//! different request handler. So the skeleton lives here once, generic
//! over a [`Handler`], and both servers are thin handlers on top:
//!
//! ```text
//!              ┌──────────┐   bounded queue    ┌─────────┐
//!  clients ──▶ │ acceptor │ ──────────────────▶│ worker  │──▶ Handler
//!              │  thread  │  (overload: 503 +  │  pool   │
//!              └──────────┘    Retry-After)    └─────────┘
//! ```
//!
//! * **Admission control**: the acceptor pushes each accepted
//!   connection into a bounded queue; when the queue is full the
//!   connection is answered `503` with `Retry-After` immediately
//!   instead of queueing without bound.
//! * **Fixed worker pool**: `threads` workers each own one connection
//!   at a time and run its keep-alive loop (sequential requests;
//!   pipelined requests and chunked bodies are rejected with `501`).
//! * **Graceful shutdown**: [`ServiceHandle::shutdown`] stops the
//!   acceptor, lets every in-flight request complete (a request whose
//!   bytes have arrived is always answered), closes idle keep-alive
//!   connections, joins the workers, and notifies the handler via
//!   [`Handler::on_shutdown`] so it can stop its own background work.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, Conn, Limits, RecvError, Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::wire;

/// Service configuration (shared by the corpus server and the router).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Admission queue bound: connections accepted but not yet claimed
    /// by a worker. Beyond it, new connections get `503` +
    /// `Retry-After`.
    pub queue_depth: usize,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive: Duration,
    /// Request size limits.
    pub limits: Limits,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            threads: 0,
            queue_depth: 64,
            keep_alive: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// What [`Service::run`] reports after a graceful shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests fully parsed and answered.
    pub requests: u64,
    /// Connections turned away at admission with `503`.
    pub rejected: u64,
}

/// The request handler a [`Service`] is generic over. One call per
/// parsed request; the handler sees the [`ServiceCore`] for metrics,
/// queue depth and the drain flag (readiness endpoints report `503`
/// during drain).
pub trait Handler: Send + Sync + 'static {
    /// Answer one routed request.
    fn handle(&self, request: &Request, core: &ServiceCore) -> Response;

    /// Called exactly once when shutdown begins (before the drain
    /// completes). Handlers stop background threads here.
    fn on_shutdown(&self) {}
}

/// The non-generic half of the shared state: metrics, admission queue,
/// shutdown flag, config. Handlers receive `&ServiceCore` with every
/// request.
pub struct ServiceCore {
    metrics: Metrics,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    config: ServiceConfig,
}

impl ServiceCore {
    pub(crate) fn new(config: ServiceConfig) -> Self {
        Self {
            metrics: Metrics::default(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            config,
        }
    }

    /// Whether a graceful shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Connections admitted but not yet claimed by a worker (sampled).
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("admission queue poisoned").len()
    }

    /// The service's request metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

struct ServiceShared<H: Handler> {
    core: ServiceCore,
    handler: H,
}

/// Object-safe view of the shared state, so [`ServiceHandle`] stays
/// non-generic (the CLI signal watcher holds handles to either server).
trait ControlOps: Send + Sync {
    fn core(&self) -> &ServiceCore;
    fn handler_shutdown(&self);
}

impl<H: Handler> ControlOps for ServiceShared<H> {
    fn core(&self) -> &ServiceCore {
        &self.core
    }

    fn handler_shutdown(&self) {
        self.handler.on_shutdown();
    }
}

/// A cloneable handle that can stop a running service from any thread
/// (or a signal watcher).
#[derive(Clone)]
pub struct ServiceHandle {
    ops: Arc<dyn ControlOps>,
    addr: SocketAddr,
}

impl ServiceHandle {
    /// Begin a graceful shutdown: stop accepting, finish in-flight
    /// requests, close idle connections. Idempotent; returns
    /// immediately ([`Service::run`] returns once the drain completes).
    pub fn shutdown(&self) {
        let core = self.ops.core();
        if !core.shutdown.swap(true, Ordering::SeqCst) {
            self.ops.handler_shutdown();
            // Wake the acceptor out of its blocking accept. The
            // connection is recognized post-flag and dropped.
            let _ = TcpStream::connect(self.addr);
        }
        core.available.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.ops.core().is_shutting_down()
    }

    /// The service's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// A bound service, ready to [`run`](Service::run).
pub struct Service<H: Handler> {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<ServiceShared<H>>,
}

impl<H: Handler> Service<H> {
    /// Bind the listener and assemble the shared state. The service
    /// does not accept connections until [`Service::run`].
    pub fn bind(handler: H, config: ServiceConfig) -> std::io::Result<Service<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServiceShared {
            core: ServiceCore::new(config),
            handler,
        });
        Ok(Service {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (the real port, when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown handle for this service.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            ops: Arc::clone(&self.shared) as Arc<dyn ControlOps>,
            addr: self.addr,
        }
    }

    /// The handler (for pre-`run` introspection, e.g. document counts).
    pub fn handler(&self) -> &H {
        &self.shared.handler
    }

    /// Serve until [`ServiceHandle::shutdown`]: spawns the worker pool,
    /// runs the accept/admission loop on the calling thread, then
    /// drains and joins everything.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let threads = if self.shared.core.config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.shared.core.config.threads
        };
        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("sigstr-worker-{i}"))
                    .spawn(move || worker_loop(&*shared))
                    .expect("spawn worker thread")
            })
            .collect();

        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(_) => {
                    if self.shared.core.is_shutting_down() {
                        break;
                    }
                    // Persistent accept errors (fd exhaustion under
                    // overload, transient ENOBUFS) must not hot-spin
                    // the acceptor at 100% CPU — back off briefly.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.shared.core.is_shutting_down() {
                // The wake-up connection (or a client racing shutdown).
                break;
            }
            self.admit(stream);
        }
        // Stop accepting *now* — connects after this refuse instead of
        // hanging in the backlog.
        drop(self.listener);
        self.shared.core.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(ServeSummary {
            requests: self.shared.core.metrics.requests(),
            rejected: self.shared.core.metrics.rejected(),
        })
    }

    /// Admission control: enqueue within the bound, `503` beyond it.
    fn admit(&self, mut stream: TcpStream) {
        let core = &self.shared.core;
        let mut queue = core.queue.lock().expect("admission queue poisoned");
        if queue.len() >= core.config.queue_depth {
            drop(queue);
            core.metrics.record_rejected();
            http::reject_overloaded(&mut stream);
            return;
        }
        queue.push_back(stream);
        drop(queue);
        core.available.notify_one();
    }
}

/// Worker: claim connections until shutdown *and* the queue is drained.
fn worker_loop<H: Handler>(shared: &ServiceShared<H>) {
    let core = &shared.core;
    loop {
        let stream = {
            let mut queue = core.queue.lock().expect("admission queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if core.is_shutting_down() {
                    break None;
                }
                queue = core
                    .available
                    .wait(queue)
                    .expect("admission queue poisoned");
            }
        };
        match stream {
            Some(stream) => serve_connection(shared, stream),
            None => return,
        }
    }
}

/// One connection's keep-alive loop.
fn serve_connection<H: Handler>(shared: &ServiceShared<H>, stream: TcpStream) {
    let core = &shared.core;
    let Ok(mut conn) = Conn::new(stream) else {
        return;
    };
    loop {
        // The yield condition doubles as the graceful-shutdown check:
        // an *idle* connection is abandoned both when the service drains
        // and when other connections wait in the admission queue — a
        // worker parked on a silent keep-alive socket while a freshly
        // dialed health probe starves would otherwise hold that probe
        // until its client-side timeout marks this shard down.
        let request = match conn.read_request(&core.config.limits, core.config.keep_alive, &|| {
            core.is_shutting_down() || core.queue_depth() > 0
        }) {
            Ok(request) => request,
            Err(RecvError::Closed | RecvError::IdleTimeout | RecvError::Shutdown) => return,
            Err(RecvError::Io(_)) => return,
            Err(RecvError::TooLarge(status, message)) => {
                respond_error(core, &mut conn, status, message);
                return;
            }
            Err(RecvError::Malformed(message)) => {
                respond_error(core, &mut conn, 400, message);
                return;
            }
            Err(RecvError::Unsupported(message)) => {
                respond_error(core, &mut conn, 501, message);
                return;
            }
        };
        let start = Instant::now();
        let mut response = shared.handler.handle(&request, core);
        let mut keep_alive = request.keep_alive && response.keep_alive && !core.is_shutting_down();
        // Fairness under worker pinning: with as many live keep-alive
        // peers as workers, every worker sits in this loop and a newly
        // dialed connection — a health probe, a directory fetch, a new
        // client — waits in the admission queue until its own timeout
        // fires. If someone is waiting, close after this response so
        // the worker cycles through all comers; `Connection: close`
        // tells well-behaved clients not to park the socket.
        if keep_alive && core.queue_depth() > 0 {
            keep_alive = false;
        }
        response.keep_alive = keep_alive;
        core.metrics.observe(response.status, start.elapsed());
        if conn.write_response(&response).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Write a closing error response for input that never became a
/// routable request. Counted as a protocol error (status class only) —
/// not in `requests` and not in the latency histogram, whose semantics
/// are "requests fully parsed and routed".
fn respond_error(core: &ServiceCore, conn: &mut Conn, status: u16, message: &str) {
    core.metrics.record_protocol_error(status);
    let _ = conn.write_response(&json_response(status, wire::error_json(message)).closing());
}

/// Encode a JSON body into a response (trailing newline included).
pub fn json_response(status: u16, body: Json) -> Response {
    match body.encode() {
        Ok(mut text) => {
            text.push('\n');
            Response::new(status, "application/json", text.into_bytes())
        }
        // A non-finite float slipped into an answer: refuse to emit it
        // silently (the documented policy), fail the request instead.
        Err(e) => Response::new(
            500,
            "application/json",
            format!("{{\"error\":\"unencodable response: {e}\"}}\n").into_bytes(),
        ),
    }
}

/// A plain-text response (metrics, liveness probes).
pub fn text_response(status: u16, body: String) -> Response {
    Response::new(status, "text/plain; charset=utf-8", body.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Handler for Echo {
        fn handle(&self, request: &Request, _core: &ServiceCore) -> Response {
            text_response(200, format!("{} {}\n", request.method, request.path))
        }
    }

    #[test]
    fn service_serves_a_generic_handler() {
        let service = Service::bind(
            Echo,
            ServiceConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let addr = service.local_addr();
        let handle = service.handle();
        let runner = std::thread::spawn(move || service.run().unwrap());

        let mut conn = crate::client::ClientConn::connect(addr).unwrap();
        let response = conn.request("GET", "/anything", None).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "GET /anything\n");

        handle.shutdown();
        let summary = runner.join().unwrap();
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn on_shutdown_fires_exactly_once() {
        use std::sync::atomic::AtomicU64;

        struct Counting(Arc<AtomicU64>);
        impl Handler for Counting {
            fn handle(&self, _request: &Request, _core: &ServiceCore) -> Response {
                text_response(200, "ok\n".into())
            }
            fn on_shutdown(&self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let fired = Arc::new(AtomicU64::new(0));
        let service = Service::bind(
            Counting(Arc::clone(&fired)),
            ServiceConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let handle = service.handle();
        let runner = std::thread::spawn(move || service.run().unwrap());
        handle.shutdown();
        handle.shutdown();
        runner.join().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
}
