//! A minimal blocking HTTP/1.1 client for one keep-alive connection.
//!
//! This exists so the fidelity tests, the throughput bench, the CI
//! smoke job and the scatter-gather router all drive the server through
//! one real TCP code path instead of several hand-rolled response
//! parsers. It is deliberately tiny: one connection, sequential
//! request/response, `Content-Length` bodies only — exactly the dialect
//! the server speaks.
//!
//! Two hardening guarantees matter to callers that *pool* connections:
//!
//! * **Every blocking operation is bounded**: connect, read and write
//!   all carry timeouts ([`ClientConfig`]), so a wedged or black-holed
//!   peer surfaces as a timeout error instead of a hang.
//! * **Stale keep-alive connections heal transparently**: a pooled
//!   connection whose peer closed it while idle (keep-alive timeout,
//!   server restart) fails on the *next* request with a reset or an
//!   immediate EOF. [`ClientConn::request`] detects that exact shape —
//!   at least one response already served on this connection, zero
//!   bytes of the current response received — reconnects once, and
//!   resends. Anything past that first response byte is never retried
//!   here (the caller decides; the router retries idempotent reads).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Timeouts for every blocking operation on a [`ClientConn`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-`read(2)` timeout while waiting for response bytes.
    pub read_timeout: Duration,
    /// Per-`write(2)` timeout while sending a request.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value under `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — server bodies are
    /// JSON or plain text).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// One keep-alive client connection.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
    addr: SocketAddr,
    config: ClientConfig,
    /// Responses completed on the *current* TCP connection. A stale
    /// reconnect is only attempted when this is non-zero — a fresh
    /// connection that fails is a real error, not keep-alive decay.
    served: u64,
}

impl ClientConn {
    /// Connect with the default timeouts (and Nagle disabled, so small
    /// requests do not sit in the send buffer).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeouts.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let stream = open(&addr, &config)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            addr,
            config,
            served: 0,
        })
    }

    /// The peer address this connection (re)connects to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Override the read timeout (e.g. to bound a read by a request
    /// deadline). Sticks until changed again; survives reconnects only
    /// as the configured default, so per-request callers set it per
    /// request.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Send raw bytes (for driving malformed input at the server).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Issue one request and read its response. `body` adds a
    /// `Content-Length` JSON body.
    ///
    /// If this pooled connection turns out to be stale — the peer
    /// closed it while idle, detected as a reset/EOF before any byte of
    /// the response arrived, on a connection that has served at least
    /// one response — it reconnects once and resends. A failure on the
    /// fresh connection (or any failure after response bytes started)
    /// is returned to the caller.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        self.request_with(method, target, body, &[])
    }

    /// [`ClientConn::request`] with extra request headers (the trace
    /// header on router→shard hops). Each entry is one `Name: value`
    /// pair; names must be untrusted-input-free (they go on the wire
    /// verbatim).
    pub fn request_with(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        match self.try_request(method, target, body, headers) {
            Ok(response) => Ok(response),
            Err(e) if self.served > 0 && self.buf.is_empty() && is_stale_error(&e) => {
                self.reconnect()?;
                self.try_request(method, target, body, headers)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: sigstr\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body.as_bytes())?;
        }
        self.stream.flush()?;
        self.read_response()
    }

    /// Drop the stale socket and dial the same peer again.
    fn reconnect(&mut self) -> std::io::Result<()> {
        self.stream = open(&self.addr, &self.config)?;
        self.buf.clear();
        self.served = 0;
        Ok(())
    }

    /// Read one response (after [`ClientConn::send_raw`], or as the
    /// second half of [`ClientConn::request`]).
    pub fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..header_end].to_vec())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{status_line}`"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let body_start = header_end + 4;
        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        self.served += 1;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

/// Dial with bounded connect time, Nagle off, both I/O timeouts armed.
fn open(addr: &SocketAddr, config: &ClientConfig) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(addr, config.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    Ok(stream)
}

/// The error shapes a peer's idle keep-alive close produces on the next
/// request: a reset/broken pipe on write, or a clean EOF on read.
/// Timeouts are *not* stale — the connection is live, the peer is slow.
fn is_stale_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    const RESPONSE: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\n";

    /// Read until a blank line (one full request head; bodies unused).
    fn read_request(stream: &mut TcpStream) -> bool {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return false,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                        return true;
                    }
                }
            }
        }
    }

    #[test]
    fn reconnects_once_when_the_pooled_connection_went_stale() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Server side: answer one request, close (idle keep-alive
        // reap), then accept a second connection and answer again.
        let server = std::thread::spawn(move || {
            let (mut first, _) = listener.accept().unwrap();
            assert!(read_request(&mut first));
            first.write_all(RESPONSE).unwrap();
            drop(first);
            let (mut second, _) = listener.accept().unwrap();
            assert!(read_request(&mut second));
            second.write_all(RESPONSE).unwrap();
            // Hold the socket until the client has read the response.
            assert!(!read_request(&mut second));
        });

        let mut conn = ClientConn::connect(addr).unwrap();
        let first = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(first.status, 200);
        // Give the server time to close; the next request hits a stale
        // socket and must transparently reconnect.
        std::thread::sleep(Duration::from_millis(50));
        let second = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(second.status, 200);
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn a_fresh_connection_that_fails_is_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept and close without answering: the first request on a
        // fresh connection sees EOF and must surface it (served == 0).
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream));
            drop(stream);
        });
        let mut conn = ClientConn::connect(addr).unwrap();
        let err = conn.request("GET", "/healthz", None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        server.join().unwrap();
    }

    #[test]
    fn reads_are_bounded_by_the_read_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A black hole: accept, read the request, never respond.
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream));
            // Keep reading so we notice the client giving up.
            assert!(!read_request(&mut stream));
        });
        let mut conn = ClientConn::connect_with(
            addr,
            ClientConfig {
                read_timeout: Duration::from_millis(100),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let start = std::time::Instant::now();
        let err = conn.request("GET", "/healthz", None).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a timeout, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "read did not time out"
        );
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn connect_to_a_closed_port_fails_promptly() {
        // Bind-then-drop guarantees the port is closed; the dial must
        // error out quickly (refused or timed out), never hang.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let config = ClientConfig {
            connect_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        };
        let start = std::time::Instant::now();
        let result = ClientConn::connect_with(addr, config);
        assert!(result.is_err());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "connect neither failed fast nor respected its timeout"
        );
    }
}
