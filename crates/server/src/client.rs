//! A minimal blocking HTTP/1.1 client for one keep-alive connection.
//!
//! This exists so the fidelity tests, the throughput bench and the CI
//! smoke job all drive the server through one real TCP code path
//! instead of three hand-rolled response parsers. It is deliberately
//! tiny: one connection, sequential request/response, `Content-Length`
//! bodies only — exactly the dialect the server speaks.

use std::io::{Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value under `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — server bodies are
    /// JSON or plain text).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// One keep-alive client connection.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ClientConn {
    /// Connect with Nagle disabled and a read timeout (so a test
    /// against a wedged server fails instead of hanging).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Send raw bytes (for driving malformed input at the server).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Issue one request and read its response. `body` adds a
    /// `Content-Length` JSON body.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: sigstr\r\n");
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body.as_bytes())?;
        }
        self.stream.flush()?;
        self.read_response()
    }

    /// Read one response (after [`ClientConn::send_raw`], or as the
    /// second half of [`ClientConn::request`]).
    pub fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..header_end].to_vec())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line `{status_line}`"),
                )
            })?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let body_start = header_end + 4;
        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
