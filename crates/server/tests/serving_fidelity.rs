//! Serving-path fidelity: answers received over HTTP — decoded from
//! JSON — must be **bit-identical** (full struct equality, `f64`
//! compared by bits) to calling the corresponding [`Corpus`] method
//! in-process; plus the overload and graceful-shutdown contracts.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use sigstr_core::{Answer, CountsLayout, Model, Query, Sequence};
use sigstr_corpus::Corpus;
use sigstr_server::client::ClientConn;
use sigstr_server::json::Json;
use sigstr_server::wire;
use sigstr_server::{Server, ServerConfig, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-server-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize, k: usize) -> Sequence {
    let mut x = seed | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % k as u64) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

/// Build a 3-document corpus (mixed k, mixed layouts) at `dir`.
fn build_corpus(dir: &PathBuf) {
    let mut corpus = Corpus::create(dir).unwrap();
    corpus
        .add_document(
            "bin-a",
            &doc(11, 600, 2),
            Model::uniform(2).unwrap(),
            CountsLayout::Flat,
        )
        .unwrap();
    corpus
        .add_document(
            "bin-b",
            &doc(12, 400, 2),
            Model::from_probs(vec![0.3, 0.7]).unwrap(),
            CountsLayout::Blocked,
        )
        .unwrap();
    corpus
        .add_document(
            "tri-c",
            &doc(13, 500, 3),
            Model::uniform(3).unwrap(),
            CountsLayout::Blocked,
        )
        .unwrap();
}

/// Boot a server over a fresh clone of the corpus at `dir`; returns the
/// handle and the thread running [`Server::run`].
fn boot(
    dir: &PathBuf,
    config: ServerConfig,
) -> (
    ServerHandle,
    std::thread::JoinHandle<sigstr_server::ServeSummary>,
) {
    let corpus = Corpus::open(dir).unwrap();
    let server = Server::bind(corpus, config).unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join)
}

fn ephemeral(threads: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        queue_depth,
        keep_alive: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn decoded_body(raw: &[u8]) -> Json {
    Json::decode(std::str::from_utf8(raw).unwrap().trim()).unwrap()
}

/// Full-precision equality including stats and every `f64` bit.
fn assert_answers_identical(over_http: &Answer, in_process: &Answer, label: &str) {
    assert_eq!(over_http, in_process, "{label}: struct equality");
    assert_eq!(over_http.stats(), in_process.stats(), "{label}: stats");
    assert_eq!(
        over_http.items().len(),
        in_process.items().len(),
        "{label}: item count"
    );
    for (a, b) in over_http.items().iter().zip(in_process.items()) {
        assert_eq!(
            a.chi_square.to_bits(),
            b.chi_square.to_bits(),
            "{label}: chi-square bits for [{}, {})",
            b.start,
            b.end
        );
    }
}

#[test]
fn query_answers_are_bit_identical_to_in_process_corpus() {
    let dir = temp_dir("fidelity");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(2, 16));
    let reference = Corpus::open(&dir).unwrap();
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    let queries = [
        Query::mss(),
        Query::top_t(5),
        Query::above_threshold(2.0),
        Query::mss_min_length(3),
        Query::mss_max_length(6),
        Query::mss().in_range(10, 300),
        Query::top_t(3).in_range(50, 350),
        Query::above_threshold(1.0).in_range(0, 128),
    ];
    for doc_name in ["bin-a", "bin-b", "tri-c"] {
        for query in &queries {
            let body = Json::Obj(vec![
                ("doc".into(), Json::Str(doc_name.into())),
                ("query".into(), wire::query_to_json(query)),
            ])
            .encode()
            .unwrap();
            let response = conn.request("POST", "/v1/query", Some(&body)).unwrap();
            assert_eq!(response.status, 200, "{doc_name} {query:?}");
            let json = decoded_body(&response.body);
            assert_eq!(json.get("doc").unwrap().as_str(), Some(doc_name));
            let over_http = wire::answer_from_json(json.get("answer").unwrap()).unwrap();
            let in_process = reference.query(doc_name, query).unwrap();
            assert_answers_identical(&over_http, &in_process, &format!("{doc_name} {query:?}"));
        }
    }

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_answers_match_run_batch_in_process() {
    let dir = temp_dir("batch");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(2, 16));
    let reference = Corpus::open(&dir).unwrap();
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    let jobs = [
        ("bin-a", Query::mss()),
        ("tri-c", Query::top_t(4)),
        ("bin-b", Query::above_threshold(3.0)),
        ("bin-a", Query::mss().in_range(5, 99)),
        ("ghost", Query::mss()),
    ];
    let jobs_json: Vec<Json> = jobs
        .iter()
        .map(|(doc, query)| {
            Json::Obj(vec![
                ("doc".into(), Json::Str((*doc).into())),
                ("query".into(), wire::query_to_json(query)),
            ])
        })
        .collect();
    let body = Json::Obj(vec![("jobs".into(), Json::Arr(jobs_json))])
        .encode()
        .unwrap();
    let response = conn.request("POST", "/v1/batch", Some(&body)).unwrap();
    assert_eq!(response.status, 200);
    let results = decoded_body(&response.body);
    let results = results.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), jobs.len());

    let expected = reference.run_batch(&jobs);
    for (i, (slot, expected)) in results.iter().zip(&expected).enumerate() {
        match expected {
            Ok(answer) => {
                let over_http = wire::answer_from_json(slot.get("answer").unwrap()).unwrap();
                assert_answers_identical(&over_http, answer, &format!("job {i}"));
            }
            Err(_) => {
                assert!(slot.get("error").is_some(), "job {i} should be an error");
                assert_eq!(slot.get("status").unwrap().as_u64(), Some(404));
            }
        }
    }

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_endpoints_are_bit_identical_to_in_process_merges() {
    let dir = temp_dir("merged");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(2, 16));
    let reference = Corpus::open(&dir).unwrap();
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    // Top-t merge.
    let t = 6;
    let response = conn
        .request("GET", &format!("/v1/merged/top?t={t}"), None)
        .unwrap();
    assert_eq!(response.status, 200);
    let json = decoded_body(&response.body);
    assert_eq!(json.get("t").unwrap().as_u64(), Some(t as u64));
    let hits: Vec<_> = json
        .get("hits")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|h| wire::hit_from_json(h).unwrap())
        .collect();
    let expected = reference.top_t_merged(t).unwrap();
    assert_eq!(hits.len(), expected.len());
    for (a, b) in hits.iter().zip(&expected) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.name, b.name);
        assert_eq!((a.item.start, a.item.end), (b.item.start, b.item.end));
        assert_eq!(a.item.chi_square.to_bits(), b.item.chi_square.to_bits());
    }

    // Threshold merge.
    let alpha = 4.5;
    let response = conn
        .request("GET", &format!("/v1/merged/threshold?alpha={alpha}"), None)
        .unwrap();
    assert_eq!(response.status, 200);
    let json = decoded_body(&response.body);
    assert_eq!(json.get("alpha").unwrap().as_f64(), Some(alpha));
    let hits: Vec<_> = json
        .get("hits")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|h| wire::hit_from_json(h).unwrap())
        .collect();
    let expected = reference.above_threshold_merged(alpha).unwrap();
    assert_eq!(json.get("count").unwrap().as_u64(), Some(hits.len() as u64));
    assert_eq!(hits.len(), expected.len());
    for (a, b) in hits.iter().zip(&expected) {
        assert_eq!((a.doc, &a.name), (b.doc, &b.name));
        assert_eq!(a.item.chi_square.to_bits(), b.item.chi_square.to_bits());
    }

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn documents_route_lists_the_manifest() {
    let dir = temp_dir("documents");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(1, 4));
    let reference = Corpus::open(&dir).unwrap();
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    let response = conn.request("GET", "/v1/documents", None).unwrap();
    assert_eq!(response.status, 200);
    let json = decoded_body(&response.body);
    let documents = json.get("documents").unwrap().as_array().unwrap();
    assert_eq!(documents.len(), reference.len());
    for (doc, entry) in documents.iter().zip(reference.entries()) {
        assert_eq!(doc.get("name").unwrap().as_str(), Some(entry.name.as_str()));
        assert_eq!(doc.get("n").unwrap().as_usize(), Some(entry.n));
        assert_eq!(doc.get("k").unwrap().as_usize(), Some(entry.k));
        assert_eq!(
            doc.get("layout").unwrap().as_str(),
            Some(entry.layout.name())
        );
    }

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keep_alive_serves_sequential_requests_and_metrics_count_them() {
    let dir = temp_dir("keepalive");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(1, 4));
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    for _ in 0..3 {
        let response = conn
            .request(
                "POST",
                "/v1/query",
                Some(r#"{"doc":"bin-a","query":{"kind":"mss"}}"#),
            )
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    let response = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(response.status, 200);
    let health = Json::decode(response.body_str().trim()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("documents").unwrap().as_u64(), Some(3));
    assert!(health.get("generation").unwrap().as_u64().unwrap() >= 1);
    let response = conn.request("GET", "/metrics", None).unwrap();
    let text = response.body_str();
    // Four requests precede the scrape (the scrape itself is counted
    // only after its response is rendered).
    assert!(text.contains("sigstr_http_requests_total 4"), "{text}");
    assert!(text.contains("sigstr_cache_hits_total"), "{text}");
    assert!(
        text.contains("sigstr_http_request_latency_us_bucket"),
        "{text}"
    );

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_violations_get_400_and_501() {
    let dir = temp_dir("protocol");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(1, 4));

    // Chunked transfer encoding → 501.
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    conn.send_raw(b"POST /v1/query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    assert_eq!(conn.read_response().unwrap().status, 501);

    // Pipelined requests → 501.
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    conn.send_raw(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    assert_eq!(conn.read_response().unwrap().status, 501);

    // Malformed request line → 400.
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    conn.send_raw(b"BROKEN\r\n\r\n").unwrap();
    assert_eq!(conn.read_response().unwrap().status, 400);

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The overload contract: with the admission queue full, a new
/// connection gets `503` + `Retry-After` immediately — and the
/// connections already being served (or queued) are neither dropped nor
/// corrupted.
#[test]
fn overload_returns_503_without_corrupting_in_flight_connections() {
    let dir = temp_dir("overload");
    build_corpus(&dir);
    // One worker, queue depth one: the third concurrent connection must
    // be turned away.
    let (handle, join) = boot(&dir, ephemeral(1, 1));
    let reference = Corpus::open(&dir).unwrap();
    let expected = reference.query("bin-a", &Query::mss()).unwrap();
    let query_body = r#"{"doc":"bin-a","query":{"kind":"mss"}}"#;

    // Connection A: served once, then held open — the only worker is
    // now parked in A's keep-alive loop.
    let mut conn_a = ClientConn::connect(handle.local_addr()).unwrap();
    let response = conn_a
        .request("POST", "/v1/query", Some(query_body))
        .unwrap();
    assert_eq!(response.status, 200);

    // Connection B: accepted into the queue (depth 1 → now full). Sends
    // its request up front; it will be answered only after A closes.
    let mut conn_b = ClientConn::connect(handle.local_addr()).unwrap();
    conn_b
        .send_raw(
            format!(
                "POST /v1/query HTTP/1.1\r\nHost: s\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                query_body.len(),
                query_body
            )
            .as_bytes(),
        )
        .unwrap();

    // Connection C: the queue is full → 503 with Retry-After, at once.
    let mut conn_c = ClientConn::connect(handle.local_addr()).unwrap();
    conn_c.send_raw(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let rejected = conn_c.read_response().unwrap();
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert_eq!(rejected.header("connection"), Some("close"));

    // A's in-flight keep-alive connection still answers, with the exact
    // same bits as before the overload.
    let response = conn_a
        .request("POST", "/v1/query", Some(query_body))
        .unwrap();
    assert_eq!(response.status, 200);
    let json = decoded_body(&response.body);
    let answer = wire::answer_from_json(json.get("answer").unwrap()).unwrap();
    assert_answers_identical(&answer, &expected, "conn A post-503");

    // Closing A frees the worker; B's queued request is then served
    // correctly — queued work survived the overload untouched.
    drop(conn_a);
    let response = conn_b.read_response().unwrap();
    assert_eq!(response.status, 200);
    let json = decoded_body(&response.body);
    let answer = wire::answer_from_json(json.get("answer").unwrap()).unwrap();
    assert_answers_identical(&answer, &expected, "conn B after drain");

    // The rejection is visible in the metrics. (B is closed first so
    // the single worker is free to claim this connection.)
    drop(conn_b);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
    let text = conn.request("GET", "/metrics", None).unwrap();
    assert!(
        text.body_str()
            .contains("sigstr_http_admission_rejected_total 1"),
        "{}",
        text.body_str()
    );

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful shutdown: requests whose bytes have arrived are drained,
/// idle connections close, new connections are refused, and `run`
/// returns the summary.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let dir = temp_dir("shutdown");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(1, 4));
    let addr = handle.local_addr();

    // Engage the single worker with a keep-alive connection.
    let mut conn = ClientConn::connect(addr).unwrap();
    let response = conn
        .request(
            "POST",
            "/v1/query",
            Some(r#"{"doc":"bin-b","query":{"kind":"top","t":3}}"#),
        )
        .unwrap();
    assert_eq!(response.status, 200);

    // Start the next request but leave it incomplete, then ask for
    // shutdown, then finish it: the request is genuinely in flight when
    // the flag flips, and the drain must still answer it (closing the
    // connection afterwards instead of keeping it alive).
    conn.send_raw(b"GET /healthz HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100)); // worker holds the partial request
    handle.shutdown();
    conn.send_raw(b"\r\n").unwrap();
    let response = conn.read_response().unwrap();
    // The drain still answers the in-flight request — but `/healthz`
    // now reports not-ready (503 + Retry-After), so a health-checking
    // router stops routing to a draining shard.
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    let health = Json::decode(response.body_str().trim()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("draining"));
    assert_eq!(response.header("connection"), Some("close"));

    // run() returns with the tally once the drain completes.
    let summary = join.join().unwrap();
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.rejected, 0);
    assert!(handle.is_shutting_down());

    // The listener is gone: new connections fail.
    assert!(TcpStream::connect(addr).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
