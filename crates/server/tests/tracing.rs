//! End-to-end request tracing: every data-path request gets a trace
//! (edge-minted or adopted from `x-sigstr-trace`), the flight recorder
//! serves it back on `/debug/traces` with the full span set, and the
//! admission-queue gauge stays bounded by the configured depth under
//! overload — decremented at dequeue, never at completion.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sigstr_core::{CountsLayout, Model, Query, Sequence};
use sigstr_corpus::Corpus;
use sigstr_obs::TRACE_HEADER;
use sigstr_server::client::ClientConn;
use sigstr_server::http::{Request, Response};
use sigstr_server::json::Json;
use sigstr_server::service::{Handler, Service, ServiceConfig, ServiceCore};
use sigstr_server::{wire, Server, ServerConfig, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-trace-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize, k: usize) -> Sequence {
    let mut x = seed | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % k as u64) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

fn build_corpus(dir: &PathBuf) {
    let mut corpus = Corpus::create(dir).unwrap();
    corpus
        .add_document(
            "bin-a",
            &doc(21, 600, 2),
            Model::uniform(2).unwrap(),
            CountsLayout::Flat,
        )
        .unwrap();
}

fn boot(
    dir: &PathBuf,
    config: ServerConfig,
) -> (
    ServerHandle,
    std::thread::JoinHandle<sigstr_server::ServeSummary>,
) {
    let corpus = Corpus::open(dir).unwrap();
    let server = Server::bind(corpus, config).unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join)
}

fn ephemeral(threads: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        queue_depth,
        keep_alive: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn query_body() -> String {
    Json::Obj(vec![
        ("doc".into(), Json::Str("bin-a".into())),
        ("query".into(), wire::query_to_json(&Query::mss())),
    ])
    .encode()
    .unwrap()
}

fn decoded(raw: &[u8]) -> Json {
    Json::decode(std::str::from_utf8(raw).unwrap().trim()).unwrap()
}

fn span_names(trace: &Json) -> Vec<String> {
    trace
        .get("spans")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap().to_string())
        .collect()
}

fn span<'a>(trace: &'a Json, name: &str) -> Option<&'a Json> {
    trace
        .get("spans")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
}

#[test]
fn adopted_trace_id_is_echoed_and_spans_cover_the_lifecycle() {
    let dir = temp_dir("adopt");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(2, 8));
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    let injected = "00000000000000000000000000c0ffee";
    let response = conn
        .request_with(
            "POST",
            "/v1/query",
            Some(&query_body()),
            &[(TRACE_HEADER, injected)],
        )
        .unwrap();
    assert_eq!(response.status, 200);
    // The response carries the trace ID the caller injected.
    assert_eq!(response.header(TRACE_HEADER), Some(injected));

    let traces = conn
        .request("GET", &format!("/debug/traces?id={injected}"), None)
        .unwrap();
    assert_eq!(traces.status, 200);
    let body = decoded(&traces.body);
    let traces = body.get("traces").and_then(Json::as_array).unwrap();
    assert_eq!(traces.len(), 1, "exactly the adopted trace");
    let trace = &traces[0];
    assert_eq!(trace.get("id").unwrap().as_str(), Some(injected));
    assert_eq!(trace.get("route").unwrap().as_str(), Some("/v1/query"));
    assert_eq!(trace.get("status").unwrap().as_u64(), Some(200));
    assert!(trace.get("total_us").unwrap().as_u64().is_some());

    // The span set covers the request lifecycle: admission queue,
    // parse, corpus cache, engine scan, response write.
    let names = span_names(trace);
    for expected in ["queue", "parse", "cache", "scan", "write"] {
        assert!(
            names.contains(&expected.to_string()),
            "missing `{expected}` in {names:?}"
        );
    }
    // The scan span carries the engine's ScanStats and SIMD tier.
    let scan = span(trace, "scan").unwrap();
    let attrs = scan.get("attrs").unwrap();
    assert_eq!(attrs.get("doc").unwrap().as_str(), Some("bin-a"));
    for key in ["examined", "skips", "skipped"] {
        let value = attrs.get(key).unwrap().as_str().unwrap();
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{key}={value} not numeric"));
    }
    assert!(
        ["scalar", "sse2", "avx2"].contains(&attrs.get("simd").unwrap().as_str().unwrap()),
        "unexpected simd tier"
    );
    // The cache span reports hit-or-load.
    let cache = span(trace, "cache").unwrap();
    let outcome = cache.get("attrs").unwrap().get("outcome").unwrap();
    assert!(matches!(outcome.as_str(), Some("hit" | "load")));

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn minted_ids_differ_per_request_and_filters_apply() {
    let dir = temp_dir("mint");
    build_corpus(&dir);
    let (handle, join) = boot(&dir, ephemeral(2, 8));
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    let body = query_body();
    let first = conn.request("POST", "/v1/query", Some(&body)).unwrap();
    let second = conn.request("POST", "/v1/query", Some(&body)).unwrap();
    let a = first.header(TRACE_HEADER).unwrap().to_string();
    let b = second.header(TRACE_HEADER).unwrap().to_string();
    assert_eq!(a.len(), 32);
    assert_eq!(b.len(), 32);
    assert_ne!(a, b, "each request gets its own trace");

    // Ops routes are never recorded; both queries are.
    conn.request("GET", "/healthz", None).unwrap();
    let all = conn.request("GET", "/debug/traces", None).unwrap();
    let routes: Vec<String> = decoded(&all.body)
        .get("traces")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|t| t.get("route").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(routes.len(), 2);
    assert!(routes.iter().all(|r| r == "/v1/query"), "{routes:?}");

    // Route/status/latency filters compose.
    let filtered = conn
        .request(
            "GET",
            "/debug/traces?route=/v1/query&status=200&limit=1",
            None,
        )
        .unwrap();
    let body = decoded(&filtered.body);
    assert_eq!(
        body.get("traces").and_then(Json::as_array).unwrap().len(),
        1
    );
    let none = conn
        .request("GET", "/debug/traces?min_us=999999999", None)
        .unwrap();
    let body = decoded(&none.body);
    assert_eq!(
        body.get("traces").and_then(Json::as_array).unwrap().len(),
        0
    );

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_tracing_skips_headers_and_recorder() {
    let dir = temp_dir("off");
    build_corpus(&dir);
    let mut config = ephemeral(2, 8);
    config.trace.enabled = false;
    let (handle, join) = boot(&dir, config);
    let mut conn = ClientConn::connect(handle.local_addr()).unwrap();

    let response = conn
        .request("POST", "/v1/query", Some(&query_body()))
        .unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header(TRACE_HEADER), None);
    let traces = conn.request("GET", "/debug/traces", None).unwrap();
    assert_eq!(traces.status, 200);
    let body = decoded(&traces.body);
    assert_eq!(
        body.get("traces").and_then(Json::as_array).unwrap().len(),
        0
    );

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The queue-depth gauge regression: it counts connections *waiting
/// for a worker*, so it must never exceed the configured queue depth,
/// even while requests are in flight. (The old accounting decremented
/// at completion, so an in-flight request still counted as queued.)
struct SlowSampler {
    delay: Duration,
    max_depth_seen: Arc<AtomicUsize>,
}

impl Handler for SlowSampler {
    fn handle(&self, _request: &Request, core: &ServiceCore) -> Response {
        let deadline = Instant::now() + self.delay;
        while Instant::now() < deadline {
            self.max_depth_seen
                .fetch_max(core.queue_depth(), Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
        }
        Response::new(200, "text/plain", b"ok\n".to_vec())
    }
}

#[test]
fn queue_gauge_is_bounded_by_configured_depth_under_overload() {
    const QUEUE_DEPTH: usize = 2;
    let max_depth_seen = Arc::new(AtomicUsize::new(0));
    let handler = SlowSampler {
        delay: Duration::from_millis(60),
        max_depth_seen: Arc::clone(&max_depth_seen),
    };
    let config = ServiceConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        queue_depth: QUEUE_DEPTH,
        keep_alive: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let service = Service::bind(handler, config).unwrap();
    let handle = service.handle();
    let addr = service.local_addr();
    let join = std::thread::spawn(move || service.run().unwrap());

    // Flood: 1 in flight + QUEUE_DEPTH waiting + the rest turned away.
    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = ClientConn::connect(addr).ok()?;
                conn.request("GET", "/anything", None)
                    .ok()
                    .map(|r| r.status)
            })
        })
        .collect();
    let statuses: Vec<u16> = clients
        .into_iter()
        .filter_map(|c| c.join().unwrap())
        .collect();

    assert!(
        statuses.contains(&200),
        "some requests served: {statuses:?}"
    );
    assert!(statuses.contains(&503), "overflow rejected: {statuses:?}");
    let max_seen = max_depth_seen.load(Ordering::SeqCst);
    assert!(
        max_seen <= QUEUE_DEPTH,
        "gauge exceeded the configured depth: saw {max_seen}, limit {QUEUE_DEPTH}"
    );

    handle.shutdown();
    join.join().unwrap();
}
