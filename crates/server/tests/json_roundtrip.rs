//! Property tests for the JSON module: `decode(encode(x))` must be the
//! identity on the document model — including control-character and
//! astral-plane strings, the full `u64` integer range, and `f64` values
//! down to the subnormals — and the non-finite-float policy (error, not
//! a silent `null`) must hold for every non-finite bit pattern.

use proptest::prelude::*;
use sigstr_server::json::{Json, JsonError};

fn roundtrip(value: &Json) -> Json {
    let text = value.encode().expect("finite documents encode");
    Json::decode(&text).unwrap_or_else(|e| panic!("decode({text:?}): {e}"))
}

/// Build a code point from three dice: ASCII, control, or anywhere in
/// the unicode scalar range (surrogates re-rolled to a replacement).
fn char_from(select: u8, raw: u32) -> char {
    match select % 3 {
        0 => (b' ' + (raw % 95) as u8) as char,   // printable ASCII
        1 => char::from_u32(raw % 0x20).unwrap(), // control chars
        _ => char::from_u32(raw % 0x11_0000).unwrap_or('\u{FFFD}'),
    }
}

/// A deterministic little Json-tree builder driven by a seed (the shim
/// proptest has no recursive strategy combinators).
fn build_tree(seed: u64, depth: usize) -> Json {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    build_tree_inner(&mut next, depth)
}

fn build_tree_inner(next: &mut impl FnMut() -> u64, depth: usize) -> Json {
    let choice = next() % if depth == 0 { 6 } else { 8 };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(next().is_multiple_of(2)),
        2 => Json::Int(next()),
        3 => {
            // Finite float from raw bits (re-roll the exponent field on
            // the rare non-finite draw).
            let bits = next();
            let value = f64::from_bits(bits);
            Json::Num(if value.is_finite() {
                value
            } else {
                f64::from_bits(bits & !(0x7FFu64 << 52))
            })
        }
        4 => {
            let len = (next() % 12) as usize;
            Json::Str(
                (0..len)
                    .map(|_| char_from(next() as u8, (next() >> 16) as u32))
                    .collect(),
            )
        }
        5 => Json::Num((next() % 1_000_000) as f64 / 997.0),
        6 => {
            let len = (next() % 4) as usize;
            Json::Arr(
                (0..len)
                    .map(|_| build_tree_inner(next, depth - 1))
                    .collect(),
            )
        }
        _ => {
            let len = (next() % 4) as usize;
            Json::Obj(
                (0..len)
                    .map(|i| (format!("k{i}"), build_tree_inner(next, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Strings with control characters, escapes, and arbitrary unicode
    /// (astral planes included) survive the round trip exactly.
    #[test]
    fn strings_roundtrip(selectors in prop::collection::vec(0u8..255, 0..40),
                         raws in prop::collection::vec(0u32..0x11_0000, 40usize)) {
        let text: String = selectors
            .iter()
            .zip(&raws)
            .map(|(&s, &r)| char_from(s, r))
            .collect();
        let value = Json::Str(text);
        prop_assert_eq!(roundtrip(&value), value);
    }

    /// Every finite `f64` — subnormals, extremes, negative zero —
    /// round-trips to the exact same bit pattern.
    #[test]
    fn finite_floats_roundtrip_bit_exactly(bits in 0u64..=u64::MAX) {
        let value = f64::from_bits(bits);
        prop_assume!(value.is_finite());
        match roundtrip(&Json::Num(value)) {
            Json::Num(back) => prop_assert_eq!(back.to_bits(), value.to_bits()),
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    /// Every non-finite bit pattern refuses to encode — the documented
    /// policy is an error, never a silent `null`.
    #[test]
    fn non_finite_floats_error(mantissa in 0u64..(1u64 << 52), sign in 0u64..2) {
        let bits = (sign << 63) | (0x7FFu64 << 52) | mantissa; // NaN or ±inf
        let value = f64::from_bits(bits);
        prop_assert!(!value.is_finite());
        prop_assert_eq!(Json::Num(value).encode(), Err(JsonError::NonFinite));
        let nested = Json::Arr(vec![Json::Obj(vec![("x".into(), Json::Num(value))])]);
        prop_assert_eq!(nested.encode(), Err(JsonError::NonFinite));
    }

    /// The full `u64` range rides as exact integers.
    #[test]
    fn integers_roundtrip(value in 0u64..=u64::MAX) {
        prop_assert_eq!(roundtrip(&Json::Int(value)), Json::Int(value));
    }

    /// Arbitrary nested documents round-trip structurally intact.
    #[test]
    fn trees_roundtrip(seed in 0u64..=u64::MAX, depth in 1usize..5) {
        let value = build_tree(seed, depth);
        prop_assert_eq!(roundtrip(&value), value);
    }
}

/// Named worst cases, pinned explicitly on top of the random sweep.
#[test]
fn f64_edge_cases_roundtrip() {
    for value in [
        0.0,
        -0.0,
        f64::MIN,
        f64::MAX,
        f64::MIN_POSITIVE,                     // smallest normal
        f64::from_bits(1),                     // smallest subnormal (5e-324)
        f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
        f64::EPSILON,
        1.0 / 3.0,
        0.1 + 0.2, // 0.30000000000000004: max shortest-repr precision
        std::f64::consts::PI,
        2f64.powi(-1022),
        (1u64 << 53) as f64, // integer precision boundary
        ((1u64 << 53) + 2) as f64,
    ] {
        let encoded = Json::Num(value).encode().unwrap();
        match Json::decode(&encoded).unwrap() {
            Json::Num(back) => assert_eq!(
                back.to_bits(),
                value.to_bits(),
                "{value:e} → {encoded} → {back:e}"
            ),
            other => panic!("{value:e} encoded as {encoded} decoded to {other:?}"),
        }
    }
}
