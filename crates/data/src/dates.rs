//! A minimal Gregorian calendar — just enough to map trading days and
//! game schedules to the `DD-MM-YYYY` dates the paper's tables print.
//!
//! Uses Howard Hinnant's `days_from_civil` / `civil_from_days` algorithms
//! (public domain), exact over the proleptic Gregorian calendar.

use std::fmt;

/// A calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Self { year, month, day })
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since the civil epoch 1970-01-01 (negative before).
    pub fn to_epoch_days(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Date from days since 1970-01-01.
    pub fn from_epoch_days(days: i64) -> Self {
        let (year, month, day) = civil_from_days(days);
        Self { year, month, day }
    }

    /// This date plus `days` (may be negative).
    pub fn plus_days(&self, days: i64) -> Self {
        Self::from_epoch_days(self.to_epoch_days() + days)
    }

    /// Signed day difference `self − other`.
    pub fn days_since(&self, other: &Date) -> i64 {
        self.to_epoch_days() - other.to_epoch_days()
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn weekday(&self) -> u8 {
        // 1970-01-01 was a Thursday (index 3).
        let days = self.to_epoch_days();
        (days.rem_euclid(7) as u8 + 3) % 7
    }

    /// Whether this is a weekend day (Saturday/Sunday).
    pub fn is_weekend(&self) -> bool {
        self.weekday() >= 5
    }

    /// The next weekday (Mon–Fri) strictly after this date.
    pub fn next_trading_day(&self) -> Self {
        let mut d = self.plus_days(1);
        while d.is_weekend() {
            d = d.plus_days(1);
        }
        d
    }
}

impl fmt::Display for Date {
    /// Formats as `DD-MM-YYYY`, the paper's table style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}-{:02}-{:04}", self.day, self.month, self.year)
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in a month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Hinnant: days since 1970-01-01 from a civil date.
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m as i32 + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Hinnant: civil date from days since 1970-01-01.
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Build a trading calendar: `n` consecutive weekdays starting at (or
/// after) `start`.
pub fn trading_calendar(start: Date, n: usize) -> Vec<Date> {
    let mut days = Vec::with_capacity(n);
    let mut d = if start.is_weekend() {
        start.next_trading_day()
    } else {
        start
    };
    for _ in 0..n {
        days.push(d);
        d = d.next_trading_day();
    }
    days
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        assert!(Date::new(2024, 2, 29).is_some()); // leap
        assert!(Date::new(2023, 2, 29).is_none());
        assert!(Date::new(1900, 2, 29).is_none()); // century, not leap
        assert!(Date::new(2000, 2, 29).is_some()); // 400-year leap
        assert!(Date::new(2020, 13, 1).is_none());
        assert!(Date::new(2020, 0, 1).is_none());
        assert!(Date::new(2020, 4, 31).is_none());
        assert!(Date::new(2020, 4, 0).is_none());
    }

    #[test]
    fn epoch_roundtrip_across_centuries() {
        for &(y, m, d) in &[
            (1901, 4, 17),
            (1924, 4, 17),
            (1970, 1, 1),
            (2000, 2, 29),
            (2010, 10, 3),
            (1928, 10, 1),
        ] {
            let date = Date::new(y, m, d).unwrap();
            let back = Date::from_epoch_days(date.to_epoch_days());
            assert_eq!(date, back);
        }
    }

    #[test]
    fn epoch_reference_values() {
        assert_eq!(Date::new(1970, 1, 1).unwrap().to_epoch_days(), 0);
        assert_eq!(Date::new(1970, 1, 2).unwrap().to_epoch_days(), 1);
        assert_eq!(Date::new(1969, 12, 31).unwrap().to_epoch_days(), -1);
        assert_eq!(Date::new(2000, 1, 1).unwrap().to_epoch_days(), 10_957);
    }

    #[test]
    fn weekdays_known_values() {
        // 1970-01-01 was a Thursday.
        assert_eq!(Date::new(1970, 1, 1).unwrap().weekday(), 3);
        // 2000-01-01 was a Saturday.
        assert_eq!(Date::new(2000, 1, 1).unwrap().weekday(), 5);
        assert!(Date::new(2000, 1, 1).unwrap().is_weekend());
        // 2024-01-01 was a Monday.
        assert_eq!(Date::new(2024, 1, 1).unwrap().weekday(), 0);
    }

    #[test]
    fn trading_day_skips_weekends() {
        // Friday 2024-01-05 → Monday 2024-01-08.
        let fri = Date::new(2024, 1, 5).unwrap();
        assert_eq!(fri.next_trading_day(), Date::new(2024, 1, 8).unwrap());
    }

    #[test]
    fn trading_calendar_properties() {
        let start = Date::new(1950, 1, 3).unwrap();
        let cal = trading_calendar(start, 500);
        assert_eq!(cal.len(), 500);
        assert!(cal.iter().all(|d| !d.is_weekend()));
        for pair in cal.windows(2) {
            assert!(pair[1] > pair[0]);
            let gap = pair[1].days_since(&pair[0]);
            assert!((1..=3).contains(&gap));
        }
        // ~5/7 of calendar days are trading days.
        let span = cal.last().unwrap().days_since(&cal[0]);
        assert!((span as f64 / 500.0 - 7.0 / 5.0).abs() < 0.05);
    }

    #[test]
    fn display_matches_paper_format() {
        let d = Date::new(1924, 4, 17).unwrap();
        assert_eq!(d.to_string(), "17-04-1924");
    }

    #[test]
    fn arithmetic() {
        let d = Date::new(1924, 4, 17).unwrap();
        assert_eq!(d.plus_days(30), Date::new(1924, 5, 17).unwrap());
        assert_eq!(d.plus_days(-17), Date::new(1924, 3, 31).unwrap());
        let e = Date::new(1933, 6, 6).unwrap();
        assert_eq!(e.days_since(&d), 3_337);
    }
}
