//! Plain-text loaders: bring your own series or symbol strings.
//!
//! Minimal, dependency-free parsers for the two inputs a user of this
//! library actually has: a numeric series (one value per line, or one
//! column of a delimited file) and a raw symbol string.

use sigstr_core::{Error, Result, Sequence};

/// Parse a numeric series: one value per line; blank lines and lines
/// starting with `#` are skipped. Fails on the first non-numeric line.
pub fn parse_series(text: &str) -> Result<Vec<f64>> {
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match trimmed.parse::<f64>() {
            Ok(v) if v.is_finite() => values.push(v),
            _ => {
                return Err(Error::InvalidParameter {
                    what: "series",
                    details: format!("line {}: `{trimmed}` is not a finite number", lineno + 1),
                })
            }
        }
    }
    Ok(values)
}

/// Parse one column (0-based) of a delimited file (delimiter `,`, `;` or
/// tab, auto-detected per line). Non-numeric cells in the chosen column —
/// e.g. a header row — are skipped.
pub fn parse_column(text: &str, column: usize) -> Result<Vec<f64>> {
    let mut values = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed.split([',', ';', '\t']).map(str::trim).collect();
        if let Some(cell) = cells.get(column) {
            if let Ok(v) = cell.parse::<f64>() {
                if v.is_finite() {
                    values.push(v);
                }
            }
        }
    }
    if values.is_empty() {
        return Err(Error::InvalidParameter {
            what: "column",
            details: format!("no numeric values found in column {column}"),
        });
    }
    Ok(values)
}

/// Parse a symbol string from text: every non-whitespace byte is a symbol;
/// distinct bytes map to the dense alphabet in first-appearance order.
/// Returns the sequence and the byte alphabet.
pub fn parse_symbols(text: &str) -> Result<(Sequence, Vec<u8>)> {
    let cleaned: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    Sequence::from_text(&cleaned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basic() {
        let v = parse_series("1.5\n2\n# comment\n\n-3.25\n").unwrap();
        assert_eq!(v, vec![1.5, 2.0, -3.25]);
    }

    #[test]
    fn series_rejects_junk() {
        let err = parse_series("1.0\nabc\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(parse_series("inf\n").is_err());
        assert!(parse_series("nan\n").is_err());
    }

    #[test]
    fn column_with_header_and_mixed_delimiters() {
        let text = "date,close\n2020-01-01,100.5\n2020-01-02,101.25\n2020-01-03;99.0\n";
        let v = parse_column(text, 1).unwrap();
        assert_eq!(v, vec![100.5, 101.25, 99.0]);
    }

    #[test]
    fn column_missing_is_error() {
        assert!(parse_column("a,b\nc,d\n", 5).is_err());
        assert!(parse_column("", 0).is_err());
    }

    #[test]
    fn symbols_roundtrip() {
        let (seq, alphabet) = parse_symbols("ab ba\ncb").unwrap();
        assert_eq!(alphabet, vec![b'a', b'b', b'c']);
        assert_eq!(seq.symbols(), &[0, 1, 1, 0, 2, 1]);
        assert!(parse_symbols("aaaa").is_err());
    }

    #[test]
    fn end_to_end_series_to_mss() {
        // Parse → encode → estimate → mine, all from text.
        let text = "100\n101\n102\n103\n104\n105\n104\n103\n104\n103\n102\n103\n";
        let prices = parse_series(text).unwrap();
        let seq = crate::encode::encode_updown(&prices).unwrap();
        let model = sigstr_core::Model::estimate(&seq).unwrap();
        let mss = sigstr_core::find_mss(&seq, &model).unwrap();
        // Down-days are the rarer symbol (4 of 11), so the down-heavy
        // stretch starting at move 5 is the most significant period.
        assert!(
            mss.best.start >= 5,
            "mss at {}..{}",
            mss.best.start,
            mss.best.end
        );
        assert!(mss.best.chi_square > 3.0);
    }
}
