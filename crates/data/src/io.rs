//! Plain-text loaders: bring your own series or symbol strings.
//!
//! Minimal, dependency-free parsers for the two inputs a user of this
//! library actually has: a numeric series (one value per line, or one
//! column of a delimited file) and a raw symbol string.
//!
//! Malformed or truncated input never panics: every failure mode is a
//! typed [`ParseError`] variant carrying the line/column/byte position,
//! which converts into [`sigstr_core::Error`] (and therefore surfaces
//! through the CLI as a non-zero exit code plus a precise message).

use std::fmt;

use sigstr_core::{Error, Result, Sequence};

/// A typed parse failure: what was malformed and exactly where.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The input bytes are not valid UTF-8 (binary junk or a file
    /// truncated mid-codepoint).
    NotUtf8 {
        /// Byte offset of the first invalid sequence.
        offset: usize,
    },
    /// A line (or cell) that should hold a number doesn't, or holds a
    /// non-finite one (`inf`/`nan`).
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A delimited row is truncated: it has fewer cells than the
    /// requested column needs.
    MissingColumn {
        /// 1-based line number.
        line: usize,
        /// The requested 0-based column.
        column: usize,
        /// How many cells the row actually has.
        cells: usize,
    },
    /// Parsing succeeded but produced no data at all.
    NoData {
        /// What kind of value was expected.
        what: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotUtf8 { offset } => {
                write!(
                    f,
                    "input is not valid UTF-8 (first invalid byte at offset {offset})"
                )
            }
            ParseError::BadNumber { line, text } => {
                write!(f, "line {line}: `{text}` is not a finite number")
            }
            ParseError::MissingColumn {
                line,
                column,
                cells,
            } => write!(
                f,
                "line {line}: row has {cells} cell(s), column {column} does not exist \
                 (truncated row?)"
            ),
            ParseError::NoData { what } => write!(f, "input contains no {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::InvalidParameter {
            what: "input",
            details: e.to_string(),
        }
    }
}

/// Decode raw bytes as UTF-8 with a typed error.
fn decode_utf8(raw: &[u8]) -> std::result::Result<&str, ParseError> {
    std::str::from_utf8(raw).map_err(|e| ParseError::NotUtf8 {
        offset: e.valid_up_to(),
    })
}

/// Parse a numeric series: one value per line; blank lines and lines
/// starting with `#` are skipped. Fails on the first non-numeric or
/// non-finite line, and on input with no values at all.
pub fn parse_series(text: &str) -> std::result::Result<Vec<f64>, ParseError> {
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match trimmed.parse::<f64>() {
            Ok(v) if v.is_finite() => values.push(v),
            _ => {
                return Err(ParseError::BadNumber {
                    line: lineno + 1,
                    text: trimmed.to_string(),
                })
            }
        }
    }
    if values.is_empty() {
        return Err(ParseError::NoData {
            what: "numeric values",
        });
    }
    Ok(values)
}

/// [`parse_series`] from raw bytes (typed UTF-8 validation first).
pub fn parse_series_bytes(raw: &[u8]) -> std::result::Result<Vec<f64>, ParseError> {
    parse_series(decode_utf8(raw)?)
}

/// Parse one column (0-based) of a delimited file (delimiter `,`, `;` or
/// tab, auto-detected per line). Non-numeric cells in the chosen column —
/// e.g. a header row — are skipped, but a *truncated* row (fewer cells
/// than the column needs) is a typed error: silently dropping rows would
/// misalign the series against its calendar.
pub fn parse_column(text: &str, column: usize) -> std::result::Result<Vec<f64>, ParseError> {
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed.split([',', ';', '\t']).map(str::trim).collect();
        match cells.get(column) {
            Some(cell) => {
                if let Ok(v) = cell.parse::<f64>() {
                    if v.is_finite() {
                        values.push(v);
                    }
                }
            }
            None => {
                return Err(ParseError::MissingColumn {
                    line: lineno + 1,
                    column,
                    cells: cells.len(),
                })
            }
        }
    }
    if values.is_empty() {
        return Err(ParseError::NoData {
            what: "numeric values",
        });
    }
    Ok(values)
}

/// [`parse_column`] from raw bytes (typed UTF-8 validation first).
pub fn parse_column_bytes(raw: &[u8], column: usize) -> std::result::Result<Vec<f64>, ParseError> {
    parse_column(decode_utf8(raw)?, column)
}

/// Parse a symbol string from text: every non-whitespace byte is a symbol;
/// distinct bytes map to the dense alphabet in first-appearance order.
/// Returns the sequence and the byte alphabet.
pub fn parse_symbols(text: &str) -> Result<(Sequence, Vec<u8>)> {
    let cleaned: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    Sequence::from_text(&cleaned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basic() {
        let v = parse_series("1.5\n2\n# comment\n\n-3.25\n").unwrap();
        assert_eq!(v, vec![1.5, 2.0, -3.25]);
        assert_eq!(parse_series_bytes(b"1\n2\n").unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn series_rejects_junk_with_typed_errors() {
        assert_eq!(
            parse_series("1.0\nabc\n").unwrap_err(),
            ParseError::BadNumber {
                line: 2,
                text: "abc".into()
            }
        );
        assert!(matches!(
            parse_series("inf\n").unwrap_err(),
            ParseError::BadNumber { line: 1, .. }
        ));
        assert!(matches!(
            parse_series("nan\n").unwrap_err(),
            ParseError::BadNumber { line: 1, .. }
        ));
        assert_eq!(
            parse_series("# only comments\n").unwrap_err(),
            ParseError::NoData {
                what: "numeric values"
            }
        );
        // Truncated / binary input: typed UTF-8 error with the offset.
        assert_eq!(
            parse_series_bytes(b"1.0\n\xFF\xFE").unwrap_err(),
            ParseError::NotUtf8 { offset: 4 }
        );
    }

    #[test]
    fn column_with_header_and_mixed_delimiters() {
        let text = "date,close\n2020-01-01,100.5\n2020-01-02,101.25\n2020-01-03;99.0\n";
        let v = parse_column(text, 1).unwrap();
        assert_eq!(v, vec![100.5, 101.25, 99.0]);
    }

    #[test]
    fn column_truncated_row_is_typed_error() {
        // Row 3 is truncated: the column exists elsewhere but not there.
        let text = "a,b\n1,2\n3\n4,5\n";
        assert_eq!(
            parse_column(text, 1).unwrap_err(),
            ParseError::MissingColumn {
                line: 3,
                column: 1,
                cells: 1
            }
        );
    }

    #[test]
    fn column_missing_is_error() {
        assert!(matches!(
            parse_column("a,b\nc,d\n", 5).unwrap_err(),
            ParseError::MissingColumn { line: 1, .. }
        ));
        assert_eq!(
            parse_column("1,2\n", 1).unwrap(),
            vec![2.0] // headers absent: fine
        );
        assert!(matches!(
            parse_column("", 0).unwrap_err(),
            ParseError::NoData { .. }
        ));
    }

    #[test]
    fn errors_convert_and_display() {
        let err = ParseError::BadNumber {
            line: 7,
            text: "x".into(),
        };
        assert!(err.to_string().contains("line 7"));
        let core: Error = err.into();
        assert!(core.to_string().contains("line 7"));
        assert!(ParseError::NotUtf8 { offset: 3 }.to_string().contains("3"));
        assert!(ParseError::NoData {
            what: "numeric values"
        }
        .to_string()
        .contains("no numeric values"));
    }

    #[test]
    fn symbols_roundtrip() {
        let (seq, alphabet) = parse_symbols("ab ba\ncb").unwrap();
        assert_eq!(alphabet, vec![b'a', b'b', b'c']);
        assert_eq!(seq.symbols(), &[0, 1, 1, 0, 2, 1]);
        assert!(parse_symbols("aaaa").is_err());
    }

    #[test]
    fn end_to_end_series_to_mss() {
        // Parse → encode → estimate → mine, all from text.
        let text = "100\n101\n102\n103\n104\n105\n104\n103\n104\n103\n102\n103\n";
        let prices = parse_series(text).unwrap();
        let seq = crate::encode::encode_updown(&prices).unwrap();
        let model = sigstr_core::Model::estimate(&seq).unwrap();
        let mss = sigstr_core::find_mss(&seq, &model).unwrap();
        // Down-days are the rarer symbol (4 of 11), so the down-heavy
        // stretch starting at move 5 is the most significant period.
        assert!(
            mss.best.start >= 5,
            "mss at {}..{}",
            mss.best.start,
            mss.best.end
        );
        assert!(mss.best.chi_square > 3.0);
    }
}
