//! Dataset substrate for the `sigstr` reproduction.
//!
//! Real-world inputs in the paper's §7.5 are a century of baseball
//! outcomes and three long daily price series. This crate provides:
//!
//! * [`dates`] — a minimal Gregorian calendar (trading days, `DD-MM-YYYY`
//!   formatting) so mined ranges print like the paper's tables.
//! * [`encode`] — observation→symbol encoders (up/down price strings,
//!   bucket quantization) and empirical model estimation.
//! * [`baseball`] — the synthetic Yankees–Red-Sox rivalry with the paper's
//!   Table-3 eras planted at their historical dates.
//! * [`stocks`] — synthetic Dow Jones / S&P 500 / IBM walks with the
//!   paper's Table-5 drift regimes planted at their historical dates.
//! * [`io`] — dependency-free text loaders (numeric series, delimited
//!   columns, symbol strings).
//!
//! The substitution rationale (what the paper used → what we build → why
//! the behaviour is preserved) is documented in `DESIGN.md` §5.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baseball;
pub mod dates;
pub mod encode;
pub mod io;
pub mod stocks;

pub use dates::Date;
pub use encode::{encode_updown, updown_model};
