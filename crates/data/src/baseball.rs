//! The synthetic Yankees–Red-Sox rivalry dataset (paper §7.5.1
//! substitute).
//!
//! The paper mines 2086 games (1901–2010, baseball-reference.com, 54.27%
//! Yankee wins) and reports the five dominance patches of its Table 3.
//! Offline, we synthesize a rivalry with the **same documented eras at the
//! same dates and strengths** (see `DESIGN.md` §5): the algorithms only
//! ever see the binary outcome string and its empirical model, so the
//! mined patches, their ordering and the algorithm comparison (Table 4)
//! keep their shape.

use rand::Rng;

use sigstr_gen::sports::{generate_rivalry, Era, Rivalry};

use crate::dates::Date;

/// One era from the paper's Table 3.
#[derive(Debug, Clone, Copy)]
pub struct PaperEra {
    /// Era start date (paper Table 3 "Start").
    pub start: Date,
    /// Era end date (paper Table 3 "End").
    pub end: Date,
    /// Win fraction for the Yankees during the era (Table 3 "Win%").
    pub yankee_win_pct: f64,
}

/// The five dominance patches of the paper's Table 3.
pub fn paper_eras() -> Vec<PaperEra> {
    let d = |y, m, day| Date::new(y, m, day).expect("static date");
    vec![
        PaperEra {
            start: d(1924, 4, 17),
            end: d(1933, 6, 6),
            yankee_win_pct: 0.7598,
        },
        PaperEra {
            start: d(1911, 9, 5),
            end: d(1913, 9, 1),
            yankee_win_pct: 0.1282,
        },
        PaperEra {
            start: d(1902, 5, 2),
            end: d(1903, 7, 27),
            yankee_win_pct: 0.1481,
        },
        PaperEra {
            start: d(1972, 2, 8),
            end: d(1974, 7, 28),
            yankee_win_pct: 0.20,
        },
        PaperEra {
            start: d(1960, 7, 10),
            end: d(1962, 9, 7),
            yankee_win_pct: 0.8005,
        },
    ]
}

/// The rivalry with its game schedule: outcome string plus per-game dates.
#[derive(Debug, Clone)]
pub struct BaseballDataset {
    /// The generated outcomes and planted eras (1 = Yankee win).
    pub rivalry: Rivalry,
    /// Date of each game (same length as the outcome string).
    pub schedule: Vec<Date>,
}

/// Total games in the paper's dataset.
pub const GAMES: usize = 2_086;
/// Schedule span (the rivalry's first season through 2010).
const FIRST_YEAR: i32 = 1901;
const LAST_YEAR: i32 = 2010;
/// Overall Yankee win ratio reported by the paper.
pub const OVERALL_WIN_RATIO: f64 = 0.5427;

impl BaseballDataset {
    /// Date of game `index`.
    pub fn date_of(&self, index: usize) -> Date {
        self.schedule[index]
    }

    /// First game index on or after `date` (schedule is sorted).
    pub fn index_at_or_after(&self, date: Date) -> usize {
        self.schedule.partition_point(|d| *d < date)
    }

    /// Game-index range covering `[start, end]` dates inclusive.
    pub fn index_range(&self, start: Date, end: Date) -> std::ops::Range<usize> {
        let lo = self.index_at_or_after(start);
        let hi = self.schedule.partition_point(|d| *d <= end);
        lo..hi
    }

    /// Win percentage over a game range (for printing Table-3-style rows).
    pub fn win_pct(&self, range: std::ops::Range<usize>) -> f64 {
        self.rivalry.win_ratio_range(range.start, range.end)
    }
}

/// Build the deterministic game schedule: games spread over April–September
/// of each season, seasons weighted so the century holds exactly
/// [`GAMES`] games.
fn build_schedule() -> Vec<Date> {
    let years = (LAST_YEAR - FIRST_YEAR + 1) as usize; // 110 seasons
    let per_year = GAMES / years; // 18
    let extra = GAMES % years; // 106 seasons get one more
    let mut schedule = Vec::with_capacity(GAMES);
    for (season, year) in (FIRST_YEAR..=LAST_YEAR).enumerate() {
        let games_this_year = per_year + usize::from(season < extra);
        // Spread across the season: April 10 + uniform steps (~180 days).
        let opening = Date::new(year, 4, 10).expect("static date");
        for g in 0..games_this_year {
            let offset = (g * 170) / games_this_year.max(1);
            schedule.push(opening.plus_days(offset as i64));
        }
    }
    debug_assert_eq!(schedule.len(), GAMES);
    schedule
}

/// Generate the dataset: paper eras planted on the deterministic schedule,
/// non-era games at the base rate that keeps the overall ratio ≈ 54.27%.
pub fn generate(rng: &mut impl Rng) -> BaseballDataset {
    let schedule = build_schedule();
    // Translate paper eras (dates) into game-index eras.
    let mut eras: Vec<Era> = Vec::new();
    let mut era_games = 0usize;
    let mut era_expected_wins = 0.0f64;
    for pe in paper_eras() {
        let lo = schedule.partition_point(|d| *d < pe.start);
        let hi = schedule.partition_point(|d| *d <= pe.end);
        assert!(lo < hi, "era {} .. {} matched no games", pe.start, pe.end);
        eras.push(Era {
            start: lo,
            end: hi,
            win_prob: pe.yankee_win_pct,
        });
        era_games += hi - lo;
        era_expected_wins += (hi - lo) as f64 * pe.yankee_win_pct;
    }
    // Base rate so that expected overall ratio matches the paper.
    let rest = (GAMES - era_games) as f64;
    let base = ((OVERALL_WIN_RATIO * GAMES as f64) - era_expected_wins) / rest;
    let base = base.clamp(0.01, 0.99);
    let rivalry = generate_rivalry(GAMES, base, &eras, rng)
        .expect("schedule is non-empty and eras are disjoint");
    BaseballDataset { rivalry, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigstr_gen::seeded_rng;

    #[test]
    fn schedule_shape() {
        let schedule = build_schedule();
        assert_eq!(schedule.len(), GAMES);
        assert!(schedule.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(schedule[0].year(), FIRST_YEAR);
        assert_eq!(schedule.last().unwrap().year(), LAST_YEAR);
    }

    #[test]
    fn paper_eras_map_to_games() {
        let ds = generate(&mut seeded_rng(1));
        for pe in paper_eras() {
            let range = ds.index_range(pe.start, pe.end);
            assert!(!range.is_empty(), "era {} empty", pe.start);
            // The 1924–33 era spans ~9 seasons ⇒ on the order of 170 games.
            if pe.start.year() == 1924 {
                assert!(range.len() > 100, "long era too short: {}", range.len());
            }
        }
    }

    #[test]
    fn overall_ratio_near_paper() {
        let ds = generate(&mut seeded_rng(2));
        let ratio = ds.rivalry.win_ratio();
        assert!(
            (ratio - OVERALL_WIN_RATIO).abs() < 0.03,
            "overall ratio {ratio} far from paper's 54.27%"
        );
    }

    #[test]
    fn era_ratios_near_planted_strengths() {
        let ds = generate(&mut seeded_rng(3));
        for pe in paper_eras() {
            let range = ds.index_range(pe.start, pe.end);
            let got = ds.win_pct(range.clone());
            assert!(
                (got - pe.yankee_win_pct).abs() < 0.17,
                "era {}: ratio {got} vs planted {}",
                pe.start,
                pe.yankee_win_pct
            );
        }
    }

    #[test]
    fn date_index_roundtrips() {
        let ds = generate(&mut seeded_rng(4));
        let date = ds.date_of(1000);
        let idx = ds.index_at_or_after(date);
        assert!(idx <= 1000);
        assert_eq!(ds.date_of(idx), date);
    }

    #[test]
    fn mss_finds_the_long_dominance_era() {
        // End-to-end Table-3 behaviour: the strongest patch is the
        // 1924–1933 Yankee era.
        let ds = generate(&mut seeded_rng(5));
        let model = sigstr_core::Model::estimate(&ds.rivalry.outcomes).unwrap();
        let mss = sigstr_core::find_mss(&ds.rivalry.outcomes, &model).unwrap();
        let era = ds.index_range(
            Date::new(1924, 4, 17).unwrap(),
            Date::new(1933, 6, 6).unwrap(),
        );
        // The mined patch must overlap the planted 1924–33 era.
        let overlap = mss
            .best
            .end
            .min(era.end)
            .saturating_sub(mss.best.start.max(era.start));
        assert!(
            overlap as f64 >= 0.3 * era.len() as f64,
            "mined {}..{} vs era {era:?}",
            mss.best.start,
            mss.best.end
        );
    }
}
