//! The synthetic securities datasets (paper §7.5.2 substitute).
//!
//! The paper mines the up/down strings of three long daily series:
//! Dow Jones (20906 days from 1928), S&P 500 (15600 days from 1950) and
//! IBM (12517 days from 1962), reporting the good/bad periods of its
//! Table 5. Offline, we synthesize geometric random walks of the same
//! lengths with **drift regimes planted at the paper's Table-5 periods**,
//! calibrated so each regime reproduces the paper's reported price change.
//! The mining pipeline is identical to the paper's: encode up/down,
//! estimate the empirical model, mine.

use rand::Rng;

use sigstr_core::{Model, Sequence};
use sigstr_gen::walk::{generate_prices, PriceSeries, Regime};

use crate::dates::{trading_calendar, Date};
use crate::encode::encode_updown;

/// A drift regime specified in calendar dates with a target total change.
#[derive(Debug, Clone, Copy)]
pub struct PaperRegime {
    /// Regime start date (paper Table 5 "Start").
    pub start: Date,
    /// Regime end date (paper Table 5 "End").
    pub end: Date,
    /// Target relative change over the regime (e.g. `0.681` = +68.1%).
    pub change: f64,
}

/// Specification of one synthetic security.
#[derive(Debug, Clone)]
pub struct StockSpec {
    /// Security name as printed in the tables.
    pub name: &'static str,
    /// Number of trading days.
    pub days: usize,
    /// First trading day.
    pub first_day: Date,
    /// Daily move size (geometric step).
    pub step: f64,
    /// Up-day probability outside regimes.
    pub base_up: f64,
    /// The planted regimes.
    pub regimes: Vec<PaperRegime>,
}

/// A generated security: prices, calendar, up/down string and empirical
/// model.
#[derive(Debug, Clone)]
pub struct StockDataset {
    /// The specification this dataset was generated from.
    pub spec: StockSpec,
    /// The price series (length `days + 1`).
    pub series: PriceSeries,
    /// Trading-day calendar (length `days + 1`; entry `i` is the date of
    /// price `i`, so move `i` happens on calendar day `i + 1`).
    pub calendar: Vec<Date>,
    /// The up/down string (length `days`).
    pub updown: Sequence,
    /// The empirical Bernoulli model of the up/down string.
    pub model: Model,
}

impl StockDataset {
    /// Date of daily move `index` (the day the price changed).
    pub fn date_of_move(&self, index: usize) -> Date {
        self.calendar[index + 1]
    }

    /// Index range of moves between two dates (inclusive).
    pub fn move_range(&self, start: Date, end: Date) -> std::ops::Range<usize> {
        let lo = self
            .calendar
            .partition_point(|d| *d < start)
            .saturating_sub(1);
        let hi = self
            .calendar
            .partition_point(|d| *d <= end)
            .saturating_sub(1);
        lo..hi.max(lo)
    }

    /// Relative price change over a move range (Table 5 "Change" column).
    pub fn change(&self, range: std::ops::Range<usize>) -> f64 {
        self.series.change(range.start, range.end)
    }
}

/// Dow Jones Industrial Average: 20906 days from 1928 (paper §7.5.2),
/// with the four Dow regimes of Table 5.
pub fn dow_spec() -> StockSpec {
    let d = |y, m, day| Date::new(y, m, day).expect("static date");
    StockSpec {
        name: "Dow Jones",
        days: 20_906,
        first_day: d(1928, 10, 1),
        step: 0.008,
        base_up: 0.52,
        regimes: vec![
            PaperRegime {
                start: d(1954, 2, 24),
                end: d(1955, 12, 6),
                change: 0.681,
            },
            PaperRegime {
                start: d(1958, 6, 25),
                end: d(1959, 8, 4),
                change: 0.4352,
            },
            PaperRegime {
                start: d(1931, 2, 27),
                end: d(1932, 5, 4),
                change: -0.7117,
            },
            PaperRegime {
                start: d(1929, 9, 19),
                end: d(1929, 11, 14),
                change: -0.4127,
            },
        ],
    }
}

/// S&P 500: 15600 days from 1950, with the four S&P regimes of Table 5.
pub fn sp500_spec() -> StockSpec {
    let d = |y, m, day| Date::new(y, m, day).expect("static date");
    StockSpec {
        name: "S&P 500",
        days: 15_600,
        first_day: d(1950, 1, 3),
        step: 0.008,
        base_up: 0.52,
        regimes: vec![
            PaperRegime {
                start: d(1953, 9, 15),
                end: d(1955, 9, 20),
                change: 0.9707,
            },
            PaperRegime {
                start: d(1994, 12, 9),
                end: d(1995, 5, 17),
                change: 0.1792,
            },
            PaperRegime {
                start: d(1973, 10, 26),
                end: d(1974, 11, 21),
                change: -0.3979,
            },
            PaperRegime {
                start: d(2000, 9, 5),
                end: d(2003, 3, 12),
                change: -0.4624,
            },
        ],
    }
}

/// IBM common stock: 12517 days from 1962, with the four IBM regimes of
/// Table 5.
pub fn ibm_spec() -> StockSpec {
    let d = |y, m, day| Date::new(y, m, day).expect("static date");
    StockSpec {
        name: "IBM",
        days: 12_517,
        first_day: d(1962, 1, 2),
        step: 0.010,
        base_up: 0.52,
        regimes: vec![
            PaperRegime {
                start: d(1970, 8, 13),
                end: d(1970, 10, 6),
                change: 0.376,
            },
            PaperRegime {
                start: d(1962, 10, 26),
                end: d(1968, 1, 26),
                change: 2.52,
            },
            PaperRegime {
                start: d(2005, 3, 31),
                end: d(2005, 4, 20),
                change: -0.212,
            },
            PaperRegime {
                start: d(1973, 2, 22),
                end: d(1975, 8, 13),
                change: -0.4691,
            },
        ],
    }
}

/// All three securities in paper order.
pub fn all_specs() -> Vec<StockSpec> {
    vec![dow_spec(), sp500_spec(), ibm_spec()]
}

/// The up probability that produces `change` over `days` moves of size
/// `step` in expectation: solve `(1+δ)^u (1−δ)^{d−u} = 1 + change` for the
/// up-day count `u`, then `p = u/d` (clamped inside `(0.02, 0.98)`).
fn up_prob_for_change(change: f64, days: usize, step: f64) -> f64 {
    let d = days as f64;
    let up = (1.0 + step).ln();
    let down = (1.0 - step).ln();
    let u = ((1.0 + change).ln() - d * down) / (up - down);
    (u / d).clamp(0.02, 0.98)
}

/// Generate a security dataset from a spec.
pub fn generate(spec: &StockSpec, rng: &mut impl Rng) -> StockDataset {
    let calendar = trading_calendar(spec.first_day, spec.days + 1);
    // Translate date regimes into move-index regimes with calibrated
    // probabilities. Move i changes price i → i+1 and lands on calendar
    // day i+1; a date range [start, end] covers moves whose landing day is
    // inside it.
    let mut regimes: Vec<Regime> = Vec::new();
    for pr in &spec.regimes {
        let lo = calendar
            .partition_point(|d| *d < pr.start)
            .saturating_sub(1);
        let hi = calendar.partition_point(|d| *d <= pr.end).saturating_sub(1);
        assert!(
            lo < hi,
            "regime {} .. {} matched no trading days",
            pr.start,
            pr.end
        );
        let up_prob = up_prob_for_change(pr.change, hi - lo, spec.step);
        regimes.push(Regime {
            start: lo,
            end: hi,
            up_prob,
        });
    }
    regimes.sort_by_key(|r| r.start);
    let series = generate_prices(spec.days, 100.0, spec.step, spec.base_up, &regimes, rng);
    let updown = encode_updown(&series.prices).expect("series has >= 2 prices");
    let model = Model::estimate(&updown).expect("both ups and downs occur");
    StockDataset {
        spec: spec.clone(),
        series,
        calendar,
        updown,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigstr_gen::seeded_rng;

    #[test]
    fn specs_have_paper_lengths() {
        assert_eq!(dow_spec().days, 20_906);
        assert_eq!(sp500_spec().days, 15_600);
        assert_eq!(ibm_spec().days, 12_517);
        assert_eq!(all_specs().len(), 3);
    }

    #[test]
    fn up_prob_calibration_is_sane() {
        // A +68% change over ~450 trading days at 0.8% steps needs a
        // modestly bullish probability.
        let p = up_prob_for_change(0.681, 450, 0.008);
        assert!(p > 0.55 && p < 0.75, "p = {p}");
        // A −71% crash needs a strongly bearish one.
        let q = up_prob_for_change(-0.7117, 300, 0.008);
        assert!(q < 0.35, "q = {q}");
        // Extreme targets clamp.
        assert!(up_prob_for_change(100.0, 10, 0.008) <= 0.98);
        assert!(up_prob_for_change(-0.9999, 10, 0.008) >= 0.02);
    }

    #[test]
    fn generated_dataset_shape() {
        let ds = generate(&sp500_spec(), &mut seeded_rng(1));
        assert_eq!(ds.series.days(), 15_600);
        assert_eq!(ds.calendar.len(), 15_601);
        assert_eq!(ds.updown.len(), 15_600);
        assert_eq!(ds.model.k(), 2);
        // The calendar spans 1950 to roughly 2010 (15600 trading days
        // ≈ 60 years).
        assert_eq!(ds.calendar[0].year(), 1950);
        let last = ds.calendar.last().unwrap().year();
        assert!((2009..=2012).contains(&last), "last year {last}");
    }

    #[test]
    fn regimes_reproduce_target_changes_roughly() {
        let spec = dow_spec();
        let ds = generate(&spec, &mut seeded_rng(7));
        for pr in &spec.regimes {
            let range = ds.move_range(pr.start, pr.end);
            let got = ds.change(range.clone());
            // Multiplicative tolerance: the sampled walk fluctuates around
            // the calibrated drift.
            let got_log = (1.0 + got).ln();
            let want_log = (1.0 + pr.change).ln();
            assert!(
                (got_log - want_log).abs() < 0.35,
                "{}: regime {} change {got:.3} vs target {:.3}",
                spec.name,
                pr.start,
                pr.change
            );
        }
    }

    #[test]
    fn crash_regime_is_mined_as_significant() {
        // End-to-end Table-5 behaviour on the S&P: the 1973–74 crash or
        // the 1953–55 boom must surface among the top patches.
        let spec = sp500_spec();
        let ds = generate(&spec, &mut seeded_rng(3));
        let top = sigstr_core::top_t(&ds.updown, &ds.model, 5).unwrap();
        let crash = ds.move_range(
            Date::new(1973, 10, 26).unwrap(),
            Date::new(1974, 11, 21).unwrap(),
        );
        let boom = ds.move_range(
            Date::new(1953, 9, 15).unwrap(),
            Date::new(1955, 9, 20).unwrap(),
        );
        let hits = top.items.iter().any(|s| {
            let overlap_crash = s
                .end
                .min(crash.end)
                .saturating_sub(s.start.max(crash.start));
            let overlap_boom = s.end.min(boom.end).saturating_sub(s.start.max(boom.start));
            overlap_crash as f64 > 0.25 * crash.len() as f64
                || overlap_boom as f64 > 0.25 * boom.len() as f64
        });
        assert!(hits, "no top-5 patch overlaps a planted regime");
    }

    #[test]
    fn deterministic_with_seed() {
        let a = generate(&ibm_spec(), &mut seeded_rng(9));
        let b = generate(&ibm_spec(), &mut seeded_rng(9));
        assert_eq!(a.series.prices, b.series.prices);
        assert_eq!(a.updown, b.updown);
    }
}
