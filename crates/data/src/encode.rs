//! Encoders: turn raw observations into symbol sequences.

use sigstr_core::{Error, Model, Result, Sequence};

/// Encode a price series as the paper's up/down binary string (§7.5.2):
/// symbol 1 for a day whose close is strictly above the previous close,
/// 0 otherwise. `prices` must have at least 2 entries (yielding a string
/// of length `prices.len() − 1`).
pub fn encode_updown(prices: &[f64]) -> Result<Sequence> {
    if prices.len() < 2 {
        return Err(Error::InvalidParameter {
            what: "prices",
            details: format!("need at least 2 prices, got {}", prices.len()),
        });
    }
    let symbols: Vec<u8> = prices.windows(2).map(|w| u8::from(w[1] > w[0])).collect();
    Sequence::from_symbols(symbols, 2)
}

/// Encode a real-valued series against a fixed set of ascending bucket
/// boundaries: symbol = number of boundaries strictly below the value.
/// With `b` boundaries the alphabet size is `b + 1`.
pub fn encode_buckets(values: &[f64], boundaries: &[f64]) -> Result<Sequence> {
    if boundaries.is_empty() || boundaries.len() > 255 {
        return Err(Error::InvalidParameter {
            what: "boundaries",
            details: format!("need 1..=255 boundaries, got {}", boundaries.len()),
        });
    }
    if boundaries.windows(2).any(|w| w[0] >= w[1]) {
        return Err(Error::InvalidParameter {
            what: "boundaries",
            details: "boundaries must be strictly ascending".into(),
        });
    }
    let k = boundaries.len() + 1;
    let symbols: Vec<u8> = values
        .iter()
        .map(|&v| boundaries.iter().take_while(|&&b| v > b).count() as u8)
        .collect();
    Sequence::from_symbols(symbols, k)
}

/// The empirical up/down model of a price series (the paper's §7.5.2
/// "fixed probability … ratio of days on which price went up (or down) to
/// the total number of trading days").
pub fn updown_model(prices: &[f64]) -> Result<Model> {
    let seq = encode_updown(prices)?;
    Model::estimate(&seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updown_basic() {
        let prices = [10.0, 11.0, 10.5, 10.5, 12.0];
        let s = encode_updown(&prices).unwrap();
        // up, down, flat (= down per the paper's "0 otherwise"), up
        assert_eq!(s.symbols(), &[1, 0, 0, 1]);
    }

    #[test]
    fn updown_needs_two_prices() {
        assert!(encode_updown(&[1.0]).is_err());
        assert!(encode_updown(&[]).is_err());
    }

    #[test]
    fn updown_model_estimates_ratio() {
        let prices = [1.0, 2.0, 3.0, 2.0, 3.0, 4.0, 5.0, 4.0];
        // ups: 2,3,_,3,4,5,_ → 5 of 7
        let m = updown_model(&prices).unwrap();
        assert!((m.p(1) - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_encoding() {
        let values = [-1.0, 0.0, 0.5, 2.0, 10.0];
        let s = encode_buckets(&values, &[0.0, 1.0]).unwrap();
        assert_eq!(s.k(), 3);
        assert_eq!(s.symbols(), &[0, 0, 1, 2, 2]);
    }

    #[test]
    fn bucket_validation() {
        assert!(encode_buckets(&[1.0], &[]).is_err());
        assert!(encode_buckets(&[1.0], &[2.0, 1.0]).is_err());
        assert!(encode_buckets(&[1.0], &[1.0, 1.0]).is_err());
    }
}
