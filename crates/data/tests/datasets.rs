//! Dataset-level integration tests: the synthetic application datasets
//! must reproduce the paper's table structures end to end.

use sigstr_core::{find_mss, Model};
use sigstr_data::baseball::{self, paper_eras};
use sigstr_data::dates::Date;
use sigstr_data::stocks;
use sigstr_gen::seeded_rng;

#[test]
fn baseball_all_planted_eras_are_locally_dominant() {
    let ds = baseball::generate(&mut seeded_rng(0xDA7A));
    for era in paper_eras() {
        let range = ds.index_range(era.start, era.end);
        let got = ds.win_pct(range.clone());
        // Eras with win_prob far from the base rate must show up in the
        // realized win percentage, on the correct side of 50%.
        if era.yankee_win_pct > 0.6 {
            assert!(got > 0.6, "era {}: ratio {got}", era.start);
        }
        if era.yankee_win_pct < 0.4 {
            assert!(got < 0.4, "era {}: ratio {got}", era.start);
        }
    }
}

#[test]
fn baseball_reruns_are_deterministic_per_seed() {
    let a = baseball::generate(&mut seeded_rng(1));
    let b = baseball::generate(&mut seeded_rng(1));
    assert_eq!(a.rivalry.outcomes, b.rivalry.outcomes);
    let c = baseball::generate(&mut seeded_rng(2));
    assert_ne!(a.rivalry.outcomes, c.rivalry.outcomes);
}

#[test]
fn stock_calendars_are_consistent() {
    for spec in stocks::all_specs() {
        let ds = stocks::generate(&spec, &mut seeded_rng(7));
        // Calendar is strictly increasing and all weekdays.
        for pair in ds.calendar.windows(2) {
            assert!(pair[1] > pair[0]);
            assert!(!pair[1].is_weekend());
        }
        // Move dates round-trip through the range query.
        let probe = ds.date_of_move(ds.updown.len() / 2);
        let range = ds.move_range(probe, probe);
        assert!(!range.is_empty());
        assert_eq!(ds.date_of_move(range.start), probe);
    }
}

#[test]
fn dow_1931_crash_is_the_dominant_period() {
    // The Dow's deepest planted regime (−71% over 1931–32) must be the
    // MSS of the up/down string, as in the paper's Table 6.
    let ds = stocks::generate(&stocks::dow_spec(), &mut seeded_rng(0x0D0));
    let mss = find_mss(&ds.updown, &ds.model).unwrap();
    let crash = ds.move_range(
        Date::new(1931, 2, 27).unwrap(),
        Date::new(1932, 5, 4).unwrap(),
    );
    let overlap = mss
        .best
        .end
        .min(crash.end)
        .saturating_sub(mss.best.start.max(crash.start));
    assert!(
        overlap as f64 > 0.5 * crash.len() as f64,
        "MSS {}..{} does not cover the 1931-32 crash {crash:?}",
        mss.best.start,
        mss.best.end
    );
    // And the mined period is a loss period.
    assert!(ds.change(mss.best.start..mss.best.end) < -0.3);
}

#[test]
fn empirical_models_are_mildly_bullish() {
    // Base up-probability is 0.52 with mostly-bullish regimes, so the
    // estimated up-probability must exceed one half.
    for spec in stocks::all_specs() {
        let ds = stocks::generate(&spec, &mut seeded_rng(3));
        assert!(
            ds.model.p(1) > 0.5,
            "{}: p_up = {}",
            spec.name,
            ds.model.p(1)
        );
        assert!(ds.model.p(1) < 0.6);
    }
}

#[test]
fn updown_model_consistency_with_core_estimate() {
    let ds = stocks::generate(&stocks::ibm_spec(), &mut seeded_rng(4));
    let direct = Model::estimate(&ds.updown).unwrap();
    assert!((direct.p(1) - ds.model.p(1)).abs() < 1e-12);
}
