//! Implementation of the `sigstr` command-line tool.
//!
//! Subcommands mirror the paper's four problems plus the persistence and
//! serving layer:
//!
//! ```text
//! sigstr mss    <file> [options]           # Problem 1
//! sigstr top    <file> --t 10 [options]    # Problem 2
//! sigstr thresh <file> --alpha 20 [opts]   # Problem 3 (or --level 0.001)
//! sigstr minlen <file> --gamma 50 [opts]   # Problem 4
//! sigstr batch  <file> --query mss --query top:5 ...   # engine-served
//! sigstr index build <file> --out doc.snap [--layout blocked]
//! sigstr index info  <doc.snap>
//! sigstr corpus add   <dir> <file> --name doc1
//! sigstr corpus query <dir> --query mss [--merge-top 10]
//! sigstr corpus list  <dir>
//! ```
//!
//! Input is a text file whose bytes are the string (newlines ignored);
//! distinct bytes map to alphabet symbols in first-appearance order.
//! `--series` instead parses one number per line and encodes the up/down
//! moves; `--csv-col N` takes column `N` of a delimited file. The null
//! model defaults to the empirical (maximum-likelihood) distribution and
//! can be overridden with `--uniform` or `--probs 0.2,0.8`. `--layout`
//! forces the count-index layout (`auto` picks flat below the cache-scale
//! threshold, blocked above; baselines other than `ours` ignore it).
//!
//! `batch` treats **each non-empty line as its own document**: one
//! [`sigstr_core::Engine`] is built per document and every `--query` is
//! answered from it over one persistent worker pool
//! ([`sigstr_core::Batch`]) — the index-once/query-many serving path.
//! `index build` persists one built engine as a binary snapshot
//! ([`sigstr_core::snapshot`]); `corpus *` manages a directory of
//! snapshots behind a manifest and serves documents from warm engines
//! ([`sigstr_corpus::Corpus`]), so repeated query runs never rebuild an
//! index. Query specs: `mss`, `top:T`, `thresh:A`, `minlen:G`,
//! `maxlen:W`, each optionally range-restricted with an `@L..R` suffix
//! (`mss@10..90`).
//!
//! The argument parser is hand-rolled (the workspace's offline dependency
//! policy has no CLI crate) and fully unit-tested.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt::Write as _;

use sigstr_core::{baseline, CountsLayout, Engine, Model, Scored, Sequence};

/// Which mining algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's pruned O(n^{3/2}) algorithm (default).
    Ours,
    /// Exhaustive O(n²) scan.
    Trivial,
    /// Local-extrema baseline.
    Arlm,
    /// Linear-time heuristic.
    Agmm,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ours" => Ok(Self::Ours),
            "trivial" => Ok(Self::Trivial),
            "arlm" => Ok(Self::Arlm),
            "agmm" => Ok(Self::Agmm),
            other => Err(format!(
                "unknown algorithm `{other}` (expected ours|trivial|arlm|agmm)"
            )),
        }
    }
}

/// Parse a `--layout` value (the canonical names from
/// [`CountsLayout::name`]).
fn parse_layout(s: &str) -> Result<CountsLayout, String> {
    CountsLayout::parse(s)
        .ok_or_else(|| format!("unknown layout `{s}` (expected auto|flat|blocked)"))
}

/// How the raw input bytes become a symbol sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMode {
    /// Bytes are symbols (whitespace stripped, first-appearance
    /// alphabet).
    Text,
    /// One number per line; encoded as the up/down move string.
    Series,
    /// Column `N` of a delimited file; encoded as the up/down move
    /// string.
    CsvColumn(usize),
}

/// Which problem variant to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Problem 1: the most significant substring.
    Mss,
    /// Problem 2: top-t substrings.
    Top {
        /// Number of substrings to report.
        t: usize,
    },
    /// Problem 3: all substrings above a chi-square threshold.
    Thresh {
        /// The chi-square cutoff `α₀`.
        alpha: f64,
    },
    /// Problem 4: MSS among substrings longer than `γ₀`.
    MinLen {
        /// The length cutoff `Γ₀`.
        gamma: usize,
    },
    /// Window-constrained MSS: substrings of length at most `w`.
    MaxLen {
        /// The window size `w`.
        w: usize,
    },
    /// Engine-served batch mode: one document per input line, every
    /// `--query` answered from that document's engine.
    Batch,
    /// Build an engine and persist it as a binary snapshot.
    IndexBuild {
        /// Output snapshot path.
        out: String,
    },
    /// Print a snapshot's header (geometry, layout, sections) without
    /// loading the payloads.
    IndexInfo,
    /// Index a document into a corpus directory.
    CorpusAdd {
        /// The corpus directory.
        dir: String,
        /// The document name.
        name: String,
        /// Create an appendable live document instead of a static
        /// snapshot (the input becomes generation 1; appends accumulate
        /// in a durable tail and freeze into later generations).
        live: bool,
    },
    /// Append a file's text to a live document over HTTP.
    Append {
        /// The server (or router) address.
        addr: String,
        /// The live document name.
        doc: String,
    },
    /// Register a sliding-window watch on a live document and stream
    /// alerts via long-polls.
    Watch {
        /// The server (or router) address.
        addr: String,
        /// The live document name.
        doc: String,
        /// Sliding window length (symbols).
        window: usize,
        /// Chi-square alert threshold.
        threshold: f64,
        /// Alerts retained per append batch.
        top_t: usize,
        /// One poll, then deregister and exit (instead of following).
        once: bool,
        /// Long-poll hold per request, in milliseconds.
        timeout_ms: u64,
    },
    /// Serve queries over every document of a corpus directory.
    CorpusQuery {
        /// The corpus directory.
        dir: String,
    },
    /// List a corpus's manifest.
    CorpusList {
        /// The corpus directory.
        dir: String,
    },
    /// Serve a corpus directory over HTTP until a shutdown signal.
    Serve {
        /// The corpus directory.
        dir: String,
        /// Create the directory as an empty corpus if it does not hold
        /// one yet (booting a brand-new shard ahead of a rebalance).
        create: bool,
    },
    /// Scatter-gather router over shard servers: same HTTP surface as
    /// `serve`, answers merged across the fleet, shards health-checked
    /// and faults routed around.
    Route {
        /// Shard addresses; order is the placement contract.
        shards: Vec<String>,
        /// Per-request deadline override, in milliseconds.
        deadline_ms: Option<u64>,
        /// Retry-budget override for transport failures.
        retries: Option<u32>,
        /// Fixed hedge trigger in milliseconds (default: adaptive p95).
        hedge_ms: Option<u64>,
        /// Disable hedged requests entirely.
        no_hedge: bool,
        /// Print these documents' shard placements and exit.
        plan: Option<Vec<String>>,
    },
    /// Fetch recent request traces from a server or router and print
    /// each one's span tree (per-stage latency attribution).
    Trace {
        /// The server (or router) address.
        addr: String,
        /// Show only the trace with this 32-hex ID.
        id: Option<String>,
    },
    /// Move documents between shard corpus directories so the fleet
    /// matches a new ring layout; crash-safe and resumable.
    Rebalance {
        /// Current shard corpus directories, in ring order.
        from: Vec<String>,
        /// Target shard corpus directories, in ring order.
        to: Vec<String>,
        /// Virtual nodes per shard (must match the routers').
        vnodes: Option<usize>,
        /// Journal file override (default: `<to[0]>/rebalance.journal`).
        journal: Option<String>,
        /// Print the move plan without touching any corpus.
        dry_run: bool,
    },
}

/// Null-model selection.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Maximum-likelihood estimate from the input (default).
    Empirical,
    /// Uniform over the observed alphabet.
    Uniform,
    /// Explicit probabilities (must match the alphabet size).
    Explicit(Vec<f64>),
}

/// Parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The problem variant.
    pub command: Command,
    /// Input path (`-` = stdin). For `corpus query` / `corpus list` /
    /// `index info` the command opens its own files and this is unused.
    pub input: String,
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Null-model selection.
    pub model: ModelSpec,
    /// Count-index layout for engine-served paths (`auto` default).
    pub layout: CountsLayout,
    /// How the raw input bytes become a symbol sequence.
    pub input_mode: InputMode,
    /// Maximum rows to print for multi-result commands.
    pub limit: usize,
    /// Print scan statistics.
    pub stats: bool,
    /// Also print the family-wise (Šidák-corrected) p-value.
    pub family: bool,
    /// Raw `--query` specs for batch/corpus mode.
    pub queries: Vec<String>,
    /// Warm-engine cache budget for corpus queries, in MiB.
    pub budget_mb: Option<usize>,
    /// Print the corpus-wide merged top-T.
    pub merge_top: Option<usize>,
    /// Print the corpus-wide merged threshold set.
    pub merge_thresh: Option<f64>,
    /// Bind address for `serve` (default `127.0.0.1:8080`; port `0`
    /// picks an ephemeral port, printed on startup).
    pub addr: Option<String>,
    /// Worker threads for `serve` (`0`/absent = all cores).
    pub threads: Option<usize>,
    /// Admission queue bound for `serve`.
    pub queue_depth: Option<usize>,
    /// Load corpus snapshots zero-copy via mmap (`corpus query`,
    /// `serve`).
    pub mmap: bool,
    /// Force the portable scalar kernels (the programmatic twin of
    /// `SIGSTR_FORCE_SCALAR=1`; answers are bit-identical either way).
    pub no_simd: bool,
    /// Disable request tracing for `serve` / `route` (the flight
    /// recorder stays empty and responses carry no trace header).
    pub no_trace: bool,
    /// Slow-query log threshold for `serve` / `route`, in milliseconds:
    /// a request at or over it is logged as one JSON line on stderr.
    pub slow_ms: Option<u64>,
}

impl Invocation {
    /// Whether the driver should read `input` into memory before calling
    /// [`run`]. Corpus commands and `index info` manage their own files
    /// (a corpus input is a directory; a snapshot header does not need
    /// the whole file).
    pub fn reads_raw_input(&self) -> bool {
        !matches!(
            self.command,
            Command::IndexInfo
                | Command::CorpusQuery { .. }
                | Command::CorpusList { .. }
                | Command::Serve { .. }
                | Command::Route { .. }
                | Command::Rebalance { .. }
                | Command::Watch { .. }
                | Command::Trace { .. }
        )
    }
}

/// Usage text.
pub const USAGE: &str = "\
sigstr — mine statistically significant substrings (chi-square)

USAGE:
    sigstr <mss|top|thresh|minlen|maxlen|batch> <file|-> [OPTIONS]
    sigstr index build <file|-> --out PATH [OPTIONS]
    sigstr index info  <snapshot>
    sigstr corpus add   <dir> <file|-> --name NAME [--live] [OPTIONS]
    sigstr corpus query <dir> --query Q... [--merge-top T] [--merge-thresh A]
    sigstr corpus list  <dir> [--stats]
    sigstr serve <dir> [--addr A] [--threads N] [--budget-mb N] [--queue-depth N]
                 [--create] [--no-trace] [--slow-ms N]
    sigstr route --shards A1,A2,... [--addr A] [--threads N] [--queue-depth N]
                 [--deadline-ms N] [--retries N] [--hedge-ms N | --no-hedge]
                 [--plan NAME1,NAME2,...] [--no-trace] [--slow-ms N]
    sigstr trace <addr> [--id HEX] [--limit N]
    sigstr rebalance --from DIR1,DIR2,... --to DIR1,DIR2,...
                     [--vnodes N] [--journal PATH] [--dry-run]
    sigstr append <addr> <file|-> --doc NAME
    sigstr watch  <addr> --doc NAME [--window N] [--threshold X] [--top N]
                  [--timeout-ms N] [--once]

COMMANDS:
    mss                     most significant substring (Problem 1)
    top      --t N          top-t substrings (Problem 2)
    thresh   --alpha X      substrings with X² > alpha (Problem 3)
             --level P      …or derive alpha from significance level P
    minlen   --gamma G      MSS among substrings longer than G (Problem 4)
    maxlen   --w W          MSS among substrings of length <= W
    batch    --query Q...   one document per line, engine-served queries
                            (Q: mss | top:T | thresh:A | minlen:G | maxlen:W,
                             optionally range-restricted: mss@10..90)
    index build --out PATH  build the count index + model once, persist as
                            a binary snapshot (loaded, never rebuilt)
    index info              print a snapshot's header and sections
    corpus add --name N     snapshot a document into a corpus directory
                            (--live makes it appendable: the input is
                            generation 1, appends freeze into later ones)
    corpus query            serve --query specs over every corpus document
                            from warm engines; --merge-top T / --merge-thresh A
                            add corpus-wide merged answers
    corpus list             print the corpus manifest
                            (--stats adds warm-cache counters and bytes)
    serve                   serve the corpus over HTTP (GET /healthz,
                            /metrics, /v1/documents, /v1/merged/*;
                            POST /v1/query, /v1/batch); graceful
                            shutdown on SIGINT/SIGTERM
    route                   scatter-gather router over `serve` shards:
                            same HTTP surface, answers merged across
                            the fleet; shards health-checked, requests
                            deadlined/retried/hedged, merged routes
                            degrade (200 + \"degraded\": true) instead
                            of failing when shards die
    rebalance               move document snapshots between shard corpus
                            directories so the fleet matches the target
                            ring layout; copy is checksum-verified and
                            committed before the source releases, and a
                            journal makes an interrupted run resumable
                            (re-run with the same --to to converge)
    trace                   fetch recent request traces from a server or
                            router (`/debug/traces?join=1`) and print each
                            one's span tree; against a router the tree
                            includes the shard-side spans joined under
                            every fan-out attempt
    append                  append a file's text to a live document over
                            HTTP; prints the new geometry and any alerts
                            the append raised
    watch                   register a sliding-window watch on a live
                            document and stream alerts via long-polls
                            (--once does one poll, deregisters, exits)

OPTIONS:
    --algorithm A           ours (default) | trivial | arlm | agmm
    --layout L              count-index layout: auto (default) | flat | blocked
                            (engine-served paths; baselines ignore it)
    --series                input is a numeric series (one per line),
                            encoded as the up/down move string
    --csv-col N             input is delimited; use column N as the series
    --uniform               use the uniform null model
    --probs p1,p2,...       explicit null model probabilities
    --limit N               max rows to print (default 20)
    --stats                 print scan statistics
    --family                also print the family-wise (Sidak) p-value
    --budget-mb N           corpus warm-engine cache budget (default 256)
    --mmap                  corpus query / serve: load snapshots zero-copy
                            via mmap — first answers arrive before the
                            index is fully paged in; checksums verify
                            lazily on each engine's first query (falls
                            back to bulk reads on unsupported targets)
    --no-simd               force the portable scalar kernels (bit-identical
                            answers; same switch as SIGSTR_FORCE_SCALAR=1)
    --addr A                serve bind address (default 127.0.0.1:8080;
                            port 0 = ephemeral, printed on startup)
    --threads N             serve worker threads (default: all cores)
    --queue-depth N         serve admission queue bound; beyond it new
                            connections get 503 + Retry-After (default 64)
    --shards A1,A2,...      route: shard server addresses; list order is
                            the placement contract (keep it stable)
    --deadline-ms N         route: per-request deadline incl. retries and
                            hedges (default 2000)
    --retries N             route: retry budget after transport failures
                            (default 2)
    --hedge-ms N            route: duplicate slow attempts after N ms
                            (default: adaptive p95 trigger)
    --no-hedge              route: never duplicate attempts
    --plan N1,N2,...        route: print `name<TAB>shard<TAB>addr` for
                            each document name and exit (partitioning
                            helper; the running router uses the same map)
    --from D1,D2,...        rebalance: current shard corpus directories,
                            in ring order
    --to D1,D2,...          rebalance: target shard corpus directories,
                            in ring order (grow = append new dirs)
    --vnodes N              rebalance: virtual nodes per shard (default
                            64; must match the routers')
    --journal PATH          rebalance: journal file location (default
                            `<first-target-dir>/rebalance.journal`)
    --dry-run               rebalance: print `name<TAB>from<TAB>to` for
                            each planned move and exit without copying
    --create                serve: create the directory as an empty
                            corpus if it holds none yet (boot a fresh
                            shard ahead of a rebalance)
    --no-trace              serve/route: disable request tracing (no
                            trace header, empty flight recorder)
    --slow-ms N             serve/route: log requests at or over N ms
                            end-to-end as JSON lines on stderr
    --id HEX                trace: show only the trace with this 32-hex
                            ID (the `x-sigstr-trace` response header)
    --live                  corpus add: create an appendable live document
    --doc NAME              append/watch: the live document to target
    --window N              watch: sliding window length (default 64)
    --threshold X           watch: chi-square alert threshold (default 12)
    --top N                 watch: alerts kept per append batch (default 4)
    --timeout-ms N          watch: long-poll hold per request, ms
                            (default 10000; the server caps it at 30000)
    --once                  watch: one poll, then deregister and exit
    --help                  show this help
";

/// Parse command-line arguments (excluding `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Err(USAGE.to_string());
    }
    let verb = args[0].as_str();

    // Resolve the positional shape: plain verbs take `<input>`; `index`
    // and `corpus` take a subverb and possibly a directory first.
    let (subverb, positionals, flags_from): (Option<&str>, Vec<String>, usize) =
        match verb {
            "index" => {
                let sub = args
                    .get(1)
                    .map(|s| s.as_str())
                    .ok_or("index requires a subcommand: build | info")?;
                let input = args
                    .get(2)
                    .cloned()
                    .ok_or_else(|| format!("index {sub} requires an input path\n\n{USAGE}"))?;
                (Some(sub), vec![input], 3)
            }
            "corpus" => {
                let sub = args
                    .get(1)
                    .map(|s| s.as_str())
                    .ok_or("corpus requires a subcommand: add | query | list")?;
                let dir = args.get(2).cloned().ok_or_else(|| {
                    format!("corpus {sub} requires a corpus directory\n\n{USAGE}")
                })?;
                match sub {
                    "add" => {
                        let input = args.get(3).cloned().ok_or_else(|| {
                            format!("corpus add requires a document file\n\n{USAGE}")
                        })?;
                        (Some(sub), vec![dir, input], 4)
                    }
                    _ => (Some(sub), vec![dir], 3),
                }
            }
            "serve" => {
                let dir = args
                    .get(1)
                    .cloned()
                    .ok_or_else(|| format!("serve requires a corpus directory\n\n{USAGE}"))?;
                (None, vec![dir], 2)
            }
            // `route` and `rebalance` take no positional input — the
            // fleet comes from `--shards` / `--from`+`--to`.
            "route" | "rebalance" => (None, vec![String::new()], 1),
            "append" => {
                let addr = args
                    .get(1)
                    .cloned()
                    .ok_or_else(|| format!("append requires a server address\n\n{USAGE}"))?;
                let input = args
                    .get(2)
                    .cloned()
                    .ok_or_else(|| format!("append requires an input file (or `-`)\n\n{USAGE}"))?;
                (None, vec![addr, input], 3)
            }
            "watch" => {
                let addr = args
                    .get(1)
                    .cloned()
                    .ok_or_else(|| format!("watch requires a server address\n\n{USAGE}"))?;
                (None, vec![addr, String::new()], 2)
            }
            "trace" => {
                let addr = args
                    .get(1)
                    .cloned()
                    .ok_or_else(|| format!("trace requires a server address\n\n{USAGE}"))?;
                (None, vec![addr, String::new()], 2)
            }
            _ => {
                if args.len() < 2 {
                    return Err(format!("missing input file\n\n{USAGE}"));
                }
                (None, vec![args[1].clone()], 2)
            }
        };

    let mut algorithm = Algorithm::Ours;
    let mut model = ModelSpec::Empirical;
    let mut layout = CountsLayout::Auto;
    let mut input_mode = InputMode::Text;
    let mut limit = 20usize;
    let mut stats = false;
    let mut t: Option<usize> = None;
    let mut alpha: Option<f64> = None;
    let mut level: Option<f64> = None;
    let mut gamma: Option<usize> = None;
    let mut w: Option<usize> = None;
    let mut family = false;
    let mut queries: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut name: Option<String> = None;
    let mut budget_mb: Option<usize> = None;
    let mut merge_top: Option<usize> = None;
    let mut merge_thresh: Option<f64> = None;
    let mut addr: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut queue_depth: Option<usize> = None;
    let mut shards: Option<Vec<String>> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: Option<u32> = None;
    let mut hedge_ms: Option<u64> = None;
    let mut no_hedge = false;
    let mut plan: Option<Vec<String>> = None;
    let mut mmap = false;
    let mut no_simd = false;
    let mut from_dirs: Option<Vec<String>> = None;
    let mut to_dirs: Option<Vec<String>> = None;
    let mut vnodes: Option<usize> = None;
    let mut journal: Option<String> = None;
    let mut dry_run = false;
    let mut create = false;
    let mut live = false;
    let mut doc: Option<String> = None;
    let mut window: Option<usize> = None;
    let mut threshold: Option<f64> = None;
    let mut top: Option<usize> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut once = false;
    let mut no_trace = false;
    let mut slow_ms: Option<u64> = None;
    let mut trace_id: Option<String> = None;

    let mut i = flags_from;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<&str, String> {
            i += 1;
            args.get(i)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--algorithm" => algorithm = Algorithm::parse(take_value()?)?,
            "--layout" => layout = parse_layout(take_value()?)?,
            "--series" => input_mode = InputMode::Series,
            "--csv-col" => {
                input_mode = InputMode::CsvColumn(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --csv-col value: {e}"))?,
                )
            }
            "--uniform" => model = ModelSpec::Uniform,
            "--probs" => {
                let raw = take_value()?;
                let probs: Result<Vec<f64>, _> =
                    raw.split(',').map(|p| p.trim().parse::<f64>()).collect();
                model = ModelSpec::Explicit(probs.map_err(|e| format!("bad --probs value: {e}"))?);
            }
            "--limit" => {
                limit = take_value()?
                    .parse()
                    .map_err(|e| format!("bad --limit value: {e}"))?;
            }
            "--stats" => stats = true,
            "--t" => t = Some(take_value()?.parse().map_err(|e| format!("bad --t: {e}"))?),
            "--alpha" => {
                alpha = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --alpha: {e}"))?,
                );
            }
            "--level" => {
                level = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --level: {e}"))?,
                );
            }
            "--gamma" => {
                gamma = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --gamma: {e}"))?,
                );
            }
            "--w" => {
                w = Some(take_value()?.parse().map_err(|e| format!("bad --w: {e}"))?);
            }
            "--family" => family = true,
            "--query" => queries.push(take_value()?.to_string()),
            "--out" => out = Some(take_value()?.to_string()),
            "--name" => name = Some(take_value()?.to_string()),
            "--budget-mb" => {
                budget_mb = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --budget-mb: {e}"))?,
                );
            }
            "--merge-top" => {
                merge_top = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --merge-top: {e}"))?,
                );
            }
            "--merge-thresh" => {
                merge_thresh = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --merge-thresh: {e}"))?,
                );
            }
            "--addr" => addr = Some(take_value()?.to_string()),
            "--shards" => {
                shards = Some(
                    take_value()?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                );
            }
            "--retries" => {
                retries = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --retries: {e}"))?,
                );
            }
            "--hedge-ms" => {
                hedge_ms = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --hedge-ms: {e}"))?,
                );
            }
            "--no-hedge" => no_hedge = true,
            "--mmap" => mmap = true,
            "--no-simd" => no_simd = true,
            "--plan" => {
                plan = Some(
                    take_value()?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--threads" => {
                threads = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                );
            }
            "--from" => {
                from_dirs = Some(
                    take_value()?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--to" => {
                to_dirs = Some(
                    take_value()?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--vnodes" => {
                let v: usize = take_value()?
                    .parse()
                    .map_err(|e| format!("bad --vnodes: {e}"))?;
                if v == 0 {
                    return Err("--vnodes must be at least 1".into());
                }
                vnodes = Some(v);
            }
            "--journal" => journal = Some(take_value()?.to_string()),
            "--dry-run" => dry_run = true,
            "--create" => create = true,
            "--live" => live = true,
            "--doc" => doc = Some(take_value()?.to_string()),
            "--window" => {
                let w: usize = take_value()?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
                if w == 0 {
                    return Err("--window must be at least 1".into());
                }
                window = Some(w);
            }
            "--threshold" => {
                threshold = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --threshold: {e}"))?,
                );
            }
            "--top" => {
                let t: usize = take_value()?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
                if t == 0 {
                    return Err("--top must be at least 1".into());
                }
                top = Some(t);
            }
            "--timeout-ms" => {
                timeout_ms = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                );
            }
            "--once" => once = true,
            "--no-trace" => no_trace = true,
            "--slow-ms" => {
                slow_ms = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --slow-ms: {e}"))?,
                );
            }
            "--id" => trace_id = Some(take_value()?.to_string()),
            "--queue-depth" => {
                let depth: usize = take_value()?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?;
                if depth == 0 {
                    return Err("--queue-depth must be at least 1".into());
                }
                queue_depth = Some(depth);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
        i += 1;
    }

    let command = match (verb, subverb) {
        ("mss", _) => Command::Mss,
        ("top", _) => Command::Top {
            t: t.ok_or("top requires --t N")?,
        },
        ("thresh", _) => {
            let alpha = match (alpha, level) {
                (Some(a), None) => a,
                (None, Some(_)) => f64::NAN, // resolved later, needs k
                (None, None) => return Err("thresh requires --alpha X or --level P".into()),
                (Some(_), Some(_)) => {
                    return Err("thresh takes either --alpha or --level, not both".into())
                }
            };
            // Stash the level inside alpha as NaN marker + separate field
            // would be cleaner; keep both by re-parsing in run(). We encode
            // level by negating it below (alpha must be >= 0).
            match level {
                Some(p) if !(0.0..1.0).contains(&p) => {
                    return Err(format!("--level must be in (0,1), got {p}"))
                }
                Some(p) => Command::Thresh { alpha: -p }, // marker: negative = level
                None => Command::Thresh { alpha },
            }
        }
        ("minlen", _) => Command::MinLen {
            gamma: gamma.ok_or("minlen requires --gamma G")?,
        },
        ("maxlen", _) => Command::MaxLen {
            w: w.ok_or("maxlen requires --w W")?,
        },
        ("batch", _) => {
            if queries.is_empty() {
                return Err("batch requires at least one --query SPEC".into());
            }
            // Validate specs eagerly so malformed queries fail before any
            // document is indexed.
            for spec in &queries {
                parse_query_spec(spec)?;
            }
            Command::Batch
        }
        ("index", Some("build")) => Command::IndexBuild {
            out: out.ok_or("index build requires --out PATH")?,
        },
        ("index", Some("info")) => Command::IndexInfo,
        ("index", Some(other)) => {
            return Err(format!(
                "unknown index subcommand `{other}` (expected build|info)\n\n{USAGE}"
            ))
        }
        ("corpus", Some("add")) => Command::CorpusAdd {
            dir: positionals[0].clone(),
            name: name.ok_or("corpus add requires --name NAME")?,
            live,
        },
        ("append", _) => Command::Append {
            addr: positionals[0].clone(),
            doc: doc.clone().ok_or("append requires --doc NAME")?,
        },
        ("trace", _) => {
            if let Some(id) = &trace_id {
                if id.len() != 32 || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(format!("bad --id `{id}` (expected 32 hex digits)"));
                }
            }
            Command::Trace {
                addr: positionals[0].clone(),
                id: trace_id.clone(),
            }
        }
        ("watch", _) => Command::Watch {
            addr: positionals[0].clone(),
            doc: doc.clone().ok_or("watch requires --doc NAME")?,
            window: window.unwrap_or(64),
            threshold: threshold.unwrap_or(12.0),
            top_t: top.unwrap_or(4),
            once,
            timeout_ms: timeout_ms.unwrap_or(10_000),
        },
        ("corpus", Some("query")) => {
            if queries.is_empty() && merge_top.is_none() && merge_thresh.is_none() {
                return Err(
                    "corpus query requires at least one --query SPEC (or --merge-top / \
                     --merge-thresh)"
                        .into(),
                );
            }
            for spec in &queries {
                parse_query_spec(spec)?;
            }
            Command::CorpusQuery {
                dir: positionals[0].clone(),
            }
        }
        ("corpus", Some("list")) => Command::CorpusList {
            dir: positionals[0].clone(),
        },
        ("serve", _) => Command::Serve {
            dir: positionals[0].clone(),
            create,
        },
        ("route", _) => {
            let shards = shards.ok_or("route requires --shards ADDR1,ADDR2,...")?;
            if shards.is_empty() {
                return Err("route requires at least one shard address".into());
            }
            if no_hedge && hedge_ms.is_some() {
                return Err("route takes either --hedge-ms or --no-hedge, not both".into());
            }
            Command::Route {
                shards,
                deadline_ms,
                retries,
                hedge_ms,
                no_hedge,
                plan,
            }
        }
        ("rebalance", _) => {
            let from = from_dirs.ok_or("rebalance requires --from DIR1,DIR2,...")?;
            let to = to_dirs.ok_or("rebalance requires --to DIR1,DIR2,...")?;
            if from.is_empty() {
                return Err("rebalance requires at least one --from directory".into());
            }
            if to.is_empty() {
                return Err("rebalance requires at least one --to directory".into());
            }
            Command::Rebalance {
                from,
                to,
                vnodes,
                journal,
                dry_run,
            }
        }
        ("corpus", Some(other)) => {
            return Err(format!(
                "unknown corpus subcommand `{other}` (expected add|query|list)\n\n{USAGE}"
            ))
        }
        (other, _) => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    // The document file is the last positional (for `corpus add` the
    // directory came first).
    let input = positionals.last().cloned().expect("one positional");
    Ok(Invocation {
        command,
        input,
        algorithm,
        model,
        layout,
        input_mode,
        limit,
        stats,
        family,
        queries,
        budget_mb,
        merge_top,
        merge_thresh,
        addr,
        threads,
        queue_depth,
        mmap,
        no_simd,
        no_trace,
        slow_ms,
    })
}

/// Parse one batch query spec (`mss`, `top:3`, `thresh:4.5`, `minlen:5`,
/// `maxlen:8`, with an optional `@L..R` range suffix).
pub fn parse_query_spec(spec: &str) -> Result<sigstr_core::Query, String> {
    use sigstr_core::Query;
    let (body, range) = match spec.split_once('@') {
        Some((body, range_text)) => {
            let (l, r) = range_text
                .split_once("..")
                .ok_or_else(|| format!("bad range in `{spec}` (expected L..R)"))?;
            let l: usize = l
                .parse()
                .map_err(|e| format!("bad range start in `{spec}`: {e}"))?;
            let r: usize = r
                .parse()
                .map_err(|e| format!("bad range end in `{spec}`: {e}"))?;
            if l >= r {
                return Err(format!("empty range {l}..{r} in `{spec}` (need L < R)"));
            }
            (body, Some((l, r)))
        }
        None => (spec, None),
    };
    let query = match body.split_once(':') {
        None if body == "mss" => Query::mss(),
        Some(("top", t)) => Query::top_t(
            t.parse()
                .map_err(|e| format!("bad top count in `{spec}`: {e}"))?,
        ),
        Some(("thresh", alpha)) => Query::above_threshold(
            alpha
                .parse()
                .map_err(|e| format!("bad threshold in `{spec}`: {e}"))?,
        ),
        Some(("minlen", gamma)) => Query::mss_min_length(
            gamma
                .parse()
                .map_err(|e| format!("bad minlen in `{spec}`: {e}"))?,
        ),
        Some(("maxlen", w)) => Query::mss_max_length(
            w.parse()
                .map_err(|e| format!("bad maxlen in `{spec}`: {e}"))?,
        ),
        _ => {
            return Err(format!(
                "unknown query `{spec}` (expected mss|top:T|thresh:A|minlen:G|maxlen:W[@L..R])"
            ))
        }
    };
    Ok(match range {
        Some((l, r)) => query.in_range(l, r),
        None => query,
    })
}

/// Build the sequence from raw file bytes (whitespace stripped).
pub fn sequence_from_bytes(raw: &[u8]) -> Result<(Sequence, Vec<u8>), String> {
    let cleaned: Vec<u8> = raw
        .iter()
        .copied()
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    Sequence::from_text(&cleaned).map_err(|e| format!("cannot build sequence: {e}"))
}

/// Build the sequence per the invocation's input mode. Series modes
/// encode price moves as the up/down binary string (alphabet `d`/`u`);
/// their parse failures are the typed [`sigstr_data::io::ParseError`]s,
/// rendered with line/offset positions.
pub fn build_sequence(mode: InputMode, raw: &[u8]) -> Result<(Sequence, Vec<u8>), String> {
    match mode {
        InputMode::Text => sequence_from_bytes(raw),
        InputMode::Series => {
            let series =
                sigstr_data::io::parse_series_bytes(raw).map_err(|e| format!("bad series: {e}"))?;
            let seq = sigstr_data::encode_updown(&series).map_err(|e| e.to_string())?;
            Ok((seq, vec![b'd', b'u']))
        }
        InputMode::CsvColumn(column) => {
            let series = sigstr_data::io::parse_column_bytes(raw, column)
                .map_err(|e| format!("bad csv input: {e}"))?;
            let seq = sigstr_data::encode_updown(&series).map_err(|e| e.to_string())?;
            Ok((seq, vec![b'd', b'u']))
        }
    }
}

/// Resolve the model spec against a sequence.
pub fn resolve_model(spec: &ModelSpec, seq: &Sequence) -> Result<Model, String> {
    match spec {
        ModelSpec::Empirical => Model::estimate(seq)
            .or_else(|_| Model::estimate_smoothed(seq, 0.5))
            .map_err(|e| format!("cannot estimate model: {e}")),
        ModelSpec::Uniform => Model::uniform(seq.k()).map_err(|e| e.to_string()),
        ModelSpec::Explicit(probs) => {
            if probs.len() != seq.k() {
                return Err(format!(
                    "--probs has {} entries but the input uses {} distinct symbols",
                    probs.len(),
                    seq.k()
                ));
            }
            Model::from_probs(probs.clone()).map_err(|e| e.to_string())
        }
    }
}

/// Format one result row: range, length, X², p-value.
pub fn format_row(s: &Scored, k: usize, alphabet: &[u8]) -> String {
    let _ = alphabet;
    let mut out = String::new();
    let _ = write!(
        out,
        "[{:>8}, {:>8})  len {:>8}  X² {:>12.4}  p {:.3e}",
        s.start,
        s.end,
        s.len(),
        s.chi_square,
        s.p_value(k)
    );
    out
}

/// Run batch mode: one engine per non-empty input line, all queries
/// answered over one persistent worker pool.
fn run_batch(invocation: &Invocation, raw: &[u8]) -> Result<String, String> {
    use sigstr_core::{Answer, Batch, Query};
    if invocation.input_mode != InputMode::Text {
        return Err(
            "batch reads text documents (one per line); --series/--csv-col apply to \
                    single-document commands"
                .into(),
        );
    }
    let queries: Vec<Query> = invocation
        .queries
        .iter()
        .map(|spec| parse_query_spec(spec))
        .collect::<Result<_, _>>()?;
    let mut engines: Vec<Engine> = Vec::new();
    let mut alphabets: Vec<Vec<u8>> = Vec::new();
    for (line_no, line) in raw.split(|&b| b == b'\n').enumerate() {
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let doc = engines.len();
        let context = |e: String| format!("doc {doc} (input line {}): {e}", line_no + 1);
        let (seq, alphabet) = sequence_from_bytes(line).map_err(context)?;
        let model = resolve_model(&invocation.model, &seq).map_err(context)?;
        let engine = Engine::with_layout(&seq, model, invocation.layout)
            .map_err(|e| context(e.to_string()))?;
        engines.push(engine);
        alphabets.push(alphabet);
    }
    if engines.is_empty() {
        return Err("batch input has no non-empty documents".into());
    }
    let batch = Batch::new(0);
    let jobs: Vec<(usize, Query)> = (0..engines.len())
        .flat_map(|doc| queries.iter().map(move |&q| (doc, q)))
        .collect();
    let answers = batch.run(&engines, &jobs);

    let mut out = String::new();
    let mut slot = 0usize;
    for (doc, engine) in engines.iter().enumerate() {
        let k = engine.k();
        let _ = writeln!(
            out,
            "doc {doc}: n = {}, k = {k} (alphabet {:?})",
            engine.n(),
            alphabets[doc]
                .iter()
                .map(|&b| b as char)
                .collect::<String>()
        );
        for spec in &invocation.queries {
            match &answers[slot] {
                Ok(Answer::Best(r)) => {
                    let _ = writeln!(out, "  {spec}: {}", format_row(&r.best, k, &alphabets[doc]));
                    if invocation.stats {
                        let _ = writeln!(
                            out,
                            "    stats: examined {}, {} skip events, {} skipped",
                            r.stats.examined, r.stats.skips, r.stats.skipped
                        );
                    }
                }
                Ok(Answer::Top(r)) => {
                    let _ = writeln!(out, "  {spec}: {} substrings", r.items.len());
                    for item in r.items.iter().take(invocation.limit) {
                        let _ = writeln!(out, "    {}", format_row(item, k, &alphabets[doc]));
                    }
                }
                Ok(Answer::Threshold(r)) => {
                    let _ = writeln!(
                        out,
                        "  {spec}: {} substrings above threshold",
                        r.items.len()
                    );
                    for item in r.items.iter().take(invocation.limit) {
                        let _ = writeln!(out, "    {}", format_row(item, k, &alphabets[doc]));
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "  {spec}: error: {e}");
                }
            }
            slot += 1;
        }
    }
    Ok(out)
}

/// `index build`: index once, persist as a snapshot.
fn run_index_build(invocation: &Invocation, raw: &[u8], out_path: &str) -> Result<String, String> {
    let (seq, alphabet) = build_sequence(invocation.input_mode, raw)?;
    let model = resolve_model(&invocation.model, &seq)?;
    let engine = Engine::with_layout(&seq, model, invocation.layout).map_err(|e| e.to_string())?;
    engine
        .write_snapshot_path(out_path)
        .map_err(|e| e.to_string())?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "wrote {out_path}: n = {}, k = {} (alphabet {:?}), layout {}, index {} bytes",
        engine.n(),
        engine.k(),
        alphabet.iter().map(|&b| b as char).collect::<String>(),
        engine.layout().name(),
        engine.index_bytes()
    );
    Ok(text)
}

/// `index info`: header + section table, then an integrity pass — file
/// length against the section table, per-section 64-byte alignment, and
/// each section's payload re-checksummed against the stored value (the
/// same checks the loaders enforce, surfaced without loading an engine).
fn run_index_info(invocation: &Invocation) -> Result<String, String> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    if invocation.input == "-" {
        return Err("index info reads the snapshot header from a file, not stdin".into());
    }
    let info = sigstr_core::snapshot::read_info_path(&invocation.input)
        .map_err(|e| format!("{}: {e}", invocation.input))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: snapshot v{}, n = {}, k = {}, layout {}{}",
        invocation.input,
        info.version,
        info.n,
        info.k,
        info.layout.name(),
        if info.block > 0 {
            format!(" (block {})", info.block)
        } else {
            String::new()
        }
    );
    let mut file =
        std::fs::File::open(&invocation.input).map_err(|e| format!("{}: {e}", invocation.input))?;
    let file_len = file
        .metadata()
        .map_err(|e| format!("{}: {e}", invocation.input))?
        .len();
    let length_status = if file_len == info.total_bytes() {
        "matches the section table".to_string()
    } else {
        format!(
            "MISMATCH: section table implies {} bytes (truncated tail or trailing garbage)",
            info.total_bytes()
        )
    };
    let _ = writeln!(
        out,
        "index payload {} bytes, file {} bytes ({length_status})",
        info.index_bytes(),
        file_len
    );
    let align = sigstr_core::snapshot::SECTION_ALIGN as u64;
    let mut buf = Vec::new();
    for section in &info.sections {
        let alignment = if section.offset % align == 0 {
            format!("{align}-byte aligned")
        } else {
            "UNALIGNED".to_string()
        };
        // Re-checksum the payload; an unreadable section (e.g. past a
        // truncated tail) reports instead of erroring out of the listing.
        let checksum_status = if section.offset + section.len > file_len {
            "unreadable (past end of file)"
        } else {
            buf.resize(section.len as usize, 0);
            match file
                .seek(SeekFrom::Start(section.offset))
                .and_then(|_| file.read_exact(&mut buf))
            {
                Ok(()) if sigstr_core::snapshot::checksum64(&buf) == section.checksum => "ok",
                Ok(()) => "MISMATCH",
                Err(_) => "unreadable",
            }
        };
        let _ = writeln!(
            out,
            "  section {:<10} offset {:>10}  {:>12} bytes  {}  checksum {:016x} {}",
            section.id.name(),
            section.offset,
            section.len,
            alignment,
            section.checksum,
            checksum_status
        );
    }
    Ok(out)
}

/// `corpus add`: snapshot a document into the corpus directory
/// (`--live` makes it appendable: the input becomes generation 1 and a
/// durable tail sidecar accepts appends).
fn run_corpus_add(
    invocation: &Invocation,
    raw: &[u8],
    dir: &str,
    name: &str,
    live: bool,
) -> Result<String, String> {
    let (seq, alphabet) = build_sequence(invocation.input_mode, raw)?;
    let model = resolve_model(&invocation.model, &seq)?;
    let mut corpus = sigstr_corpus::Corpus::open_or_create(dir).map_err(|e| e.to_string())?;
    if live {
        corpus
            .add_live_document(name, &seq, &alphabet, model, invocation.layout)
            .map_err(|e| e.to_string())?;
    } else {
        corpus
            .add_document(name, &seq, model, invocation.layout)
            .map_err(|e| e.to_string())?;
    }
    let entries = corpus.entries();
    let entry = entries.last().expect("just added");
    Ok(format!(
        "added {}`{name}` to {dir}: n = {}, k = {}, layout {} ({} documents total)\n",
        if live { "live " } else { "" },
        entry.n,
        entry.k,
        entry.layout.name(),
        corpus.len()
    ))
}

/// One alert rendered for the terminal (append responses and watch
/// polls share the wire shape).
fn format_alert(alert: &sigstr_server::json::Json) -> String {
    use sigstr_server::json::Json;
    let field = |name: &str| alert.get(name).and_then(Json::as_u64).unwrap_or(0);
    let (start, end, chi_square) = alert
        .get("item")
        .map(|item| {
            (
                item.get("start").and_then(Json::as_usize).unwrap_or(0),
                item.get("end").and_then(Json::as_usize).unwrap_or(0),
                item.get("chi_square").and_then(Json::as_f64).unwrap_or(0.0),
            )
        })
        .unwrap_or((0, 0, 0.0));
    format!(
        "alert {}: watch {} gen {}  [{start:>8}, {end:>8})  X² {chi_square:>12.4}",
        field("seq"),
        field("watch"),
        field("generation"),
    )
}

/// Decode a JSON response body, surfacing the server's `error` field on
/// non-2xx statuses.
fn live_response_body(
    response: &sigstr_server::client::HttpResponse,
    context: &str,
) -> Result<sigstr_server::json::Json, String> {
    use sigstr_server::json::Json;
    let body = Json::decode(response.body_str().trim())
        .map_err(|e| format!("{context}: bad response body: {e}"))?;
    if response.status != 200 {
        let detail = body
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown error");
        return Err(format!("{context}: {} {detail}", response.status));
    }
    Ok(body)
}

/// `append`: POST the input's text to a live document and report the
/// resulting geometry plus any alerts the append raised.
fn run_append(raw: &[u8], addr: &str, doc: &str) -> Result<String, String> {
    use sigstr_server::client::ClientConn;
    use sigstr_server::json::Json;
    let text =
        std::str::from_utf8(raw).map_err(|e| format!("append input is not UTF-8 text: {e}"))?;
    let request = Json::Obj(vec![("data".into(), Json::Str(text.into()))])
        .encode()
        .map_err(|e| format!("cannot encode request: {e}"))?;
    let mut conn = ClientConn::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let response = conn
        .request(
            "POST",
            &format!("/v1/documents/{doc}/append"),
            Some(&request),
        )
        .map_err(|e| format!("append failed: {e}"))?;
    let body = live_response_body(&response, &format!("append `{doc}`"))?;
    let field = |name: &str| body.get(name).and_then(Json::as_u64).unwrap_or(0);
    let mut out = format!(
        "appended to `{doc}`: n = {}, tail = {}, generation {}{}\n",
        field("n"),
        field("tail"),
        field("generation"),
        if body.get("frozen").and_then(Json::as_bool) == Some(true) {
            " (this append froze a new generation)"
        } else {
            ""
        }
    );
    for alert in body
        .get("alerts")
        .and_then(Json::as_array)
        .unwrap_or_default()
    {
        let _ = writeln!(out, "  {}", format_alert(alert));
    }
    Ok(out)
}

/// `watch`: register the spec, then long-poll for alerts. In follow
/// mode (default) alerts stream to stdout until the process is killed;
/// `--once` does a single poll, deregisters the watch, and returns the
/// batch — the scriptable variant.
fn run_watch(
    addr: &str,
    doc: &str,
    window: usize,
    threshold: f64,
    top_t: usize,
    once: bool,
    timeout_ms: u64,
) -> Result<String, String> {
    use sigstr_server::client::ClientConn;
    use sigstr_server::json::Json;
    use std::time::Duration;
    let mut conn = ClientConn::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let request = Json::Obj(vec![
        ("doc".into(), Json::Str(doc.into())),
        ("window".into(), Json::Int(window as u64)),
        ("threshold".into(), Json::Num(threshold)),
        ("top_t".into(), Json::Int(top_t as u64)),
    ])
    .encode()
    .map_err(|e| format!("cannot encode watch spec: {e}"))?;
    let response = conn
        .request("POST", "/v1/watch", Some(&request))
        .map_err(|e| format!("watch registration failed: {e}"))?;
    let body = live_response_body(&response, &format!("watch `{doc}`"))?;
    let watch = body
        .get("watch")
        .and_then(Json::as_u64)
        .ok_or("watch registration response carried no id")?;
    // The read timeout must outlive the server-side hold.
    conn.set_read_timeout(Duration::from_millis(timeout_ms) + Duration::from_secs(5))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    if !once {
        println!("watch {watch} on `{doc}` (window {window}, X² > {threshold}); polling…");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    let mut since = 0u64;
    loop {
        let target = format!("/v1/watch?doc={doc}&since={since}&timeout_ms={timeout_ms}");
        let response = conn
            .request("GET", &target, None)
            .map_err(|e| format!("watch poll failed: {e}"))?;
        let body = live_response_body(&response, &format!("poll `{doc}`"))?;
        let alerts = body
            .get("alerts")
            .and_then(Json::as_array)
            .unwrap_or_default();
        since = body
            .get("next_since")
            .and_then(Json::as_u64)
            .unwrap_or(since);
        if once {
            // Scripted one-shot: return the batch, release the watch.
            let mut out = String::new();
            for alert in alerts {
                let _ = writeln!(out, "{}", format_alert(alert));
            }
            let _ = writeln!(
                out,
                "watch {watch}: {} alerts, cursor {since}",
                alerts.len()
            );
            conn.request(
                "DELETE",
                &format!("/v1/watch?doc={doc}&watch={watch}"),
                None,
            )
            .ok();
            return Ok(out);
        }
        for alert in alerts {
            println!("{}", format_alert(alert));
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
}

/// `trace`: fetch recent request traces and print each one's span tree.
/// The request always asks for `join=1`: a router joins the shard-side
/// traces under the edge trace, a plain shard server ignores the
/// parameter — so the same command works against either.
fn run_trace(invocation: &Invocation, addr: &str, id: Option<&str>) -> Result<String, String> {
    use sigstr_server::client::ClientConn;
    use sigstr_server::json::Json;
    let mut conn = ClientConn::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let mut target = format!("/debug/traces?join=1&limit={}", invocation.limit);
    if let Some(id) = id {
        let _ = write!(target, "&id={id}");
    }
    let response = conn
        .request("GET", &target, None)
        .map_err(|e| format!("trace fetch failed: {e}"))?;
    if response.status != 200 {
        return Err(format!("trace fetch failed: HTTP {}", response.status));
    }
    let text =
        std::str::from_utf8(&response.body).map_err(|e| format!("trace body is not UTF-8: {e}"))?;
    let body = Json::decode(text.trim()).map_err(|e| format!("trace body is not JSON: {e:?}"))?;
    let traces = body
        .get("traces")
        .and_then(Json::as_array)
        .unwrap_or_default();
    if traces.is_empty() {
        return Ok("no traces recorded\n".into());
    }
    let mut out = String::new();
    for trace in traces {
        format_trace(trace, 0, &mut out);
    }
    Ok(out)
}

/// One trace as an indented span tree. A router's joined shard traces
/// (the `shards` array) nest one level deeper, so the fan-out reads
/// top-to-bottom: edge attempt spans first, then what each shard did
/// with the same trace ID.
fn format_trace(trace: &sigstr_server::json::Json, indent: usize, out: &mut String) {
    use sigstr_server::json::Json;
    let pad = "  ".repeat(indent);
    let field = |name: &str| {
        trace
            .get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .or_else(|| {
                trace
                    .get(name)
                    .and_then(Json::as_u64)
                    .map(|v| v.to_string())
            })
            .unwrap_or_else(|| "?".into())
    };
    let _ = writeln!(
        out,
        "{pad}trace {}  {}  status {}  {}us",
        field("id"),
        field("route"),
        field("status"),
        field("total_us"),
    );
    for span in trace
        .get("spans")
        .and_then(Json::as_array)
        .unwrap_or_default()
    {
        let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
        let start = span.get("start_us").and_then(Json::as_u64).unwrap_or(0);
        let dur = span.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
        let mut attrs = String::new();
        if let Some(Json::Obj(pairs)) = span.get("attrs") {
            for (key, value) in pairs {
                let value = value.as_str().unwrap_or("?");
                let _ = write!(attrs, "  {key}={value}");
            }
        }
        let _ = writeln!(out, "{pad}  {name:<10} @{start:>7}us +{dur:>7}us{attrs}");
    }
    let shards = trace
        .get("shards")
        .and_then(Json::as_array)
        .unwrap_or_default();
    for shard_trace in shards {
        format_trace(shard_trace, indent + 1, out);
    }
}

/// Render the warm-engine cache counters (`corpus list --stats`,
/// `corpus query --stats`).
fn format_cache_stats(corpus: &sigstr_corpus::Corpus) -> String {
    let stats = corpus.cache_stats();
    format!(
        "cache: {} hits, {} loads ({} mmap, {} read), {} evictions, {} lazy verifications; \
         {} resident engines, {} resident bytes (budget {} bytes)\n",
        stats.hits,
        stats.loads,
        stats.mmap_loads,
        stats.read_loads,
        stats.evictions,
        stats.lazy_verifications,
        stats.resident,
        stats.resident_bytes,
        corpus.budget()
    )
}

/// `corpus list`: the manifest, one document per line (`--stats` adds
/// the warm-cache counters and on-disk footprint, so cache sizing is
/// observable without the server; the counters are live on the `corpus
/// query --stats` path, where the same process materializes engines).
fn run_corpus_list(invocation: &Invocation, dir: &str) -> Result<String, String> {
    let corpus = sigstr_corpus::Corpus::open(dir).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "{dir}: {} documents", corpus.len());
    for entry in corpus.entries() {
        let _ = writeln!(
            out,
            "  {:<24} n = {:>10}  k = {:>3}  layout {:<8} {}",
            entry.name,
            entry.n,
            entry.k,
            entry.layout.name(),
            entry.file
        );
    }
    if invocation.stats {
        // On-disk footprint feeds `--budget-mb` sizing: every snapshot
        // warm at once would hold roughly this many bytes resident.
        let disk_bytes: u64 = corpus
            .entries()
            .iter()
            .filter_map(|entry| {
                std::fs::metadata(std::path::Path::new(dir).join(&entry.file))
                    .map(|m| m.len())
                    .ok()
            })
            .sum();
        let _ = writeln!(
            out,
            "snapshots on disk: {disk_bytes} bytes across {} documents",
            corpus.len()
        );
        out.push_str(&format_cache_stats(&corpus));
    }
    Ok(out)
}

/// `corpus query`: serve every `--query` over every document from warm
/// engines, plus optional corpus-wide merged answers.
fn run_corpus_query(invocation: &Invocation, dir: &str) -> Result<String, String> {
    use sigstr_core::{Answer, Query};
    let queries: Vec<Query> = invocation
        .queries
        .iter()
        .map(|spec| parse_query_spec(spec))
        .collect::<Result<_, _>>()?;
    let mut corpus = sigstr_corpus::Corpus::open(dir).map_err(|e| e.to_string())?;
    if let Some(mb) = invocation.budget_mb {
        corpus.set_budget(mb << 20);
    }
    corpus.set_mmap(invocation.mmap);
    if corpus.is_empty() {
        return Err(format!("corpus {dir} has no documents"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "{dir}: {} documents", corpus.len());

    if !queries.is_empty() {
        let jobs: Vec<(usize, Query)> = (0..corpus.len())
            .flat_map(|doc| queries.iter().map(move |&q| (doc, q)))
            .collect();
        let answers = corpus.run_batch_indexed(&jobs);
        let mut slot = 0usize;
        for (doc, entry) in corpus.entries().iter().enumerate() {
            let _ = writeln!(
                out,
                "doc {doc} `{}`: n = {}, k = {}",
                entry.name, entry.n, entry.k
            );
            for spec in &invocation.queries {
                match &answers[slot] {
                    Ok(Answer::Best(r)) => {
                        let _ = writeln!(out, "  {spec}: {}", format_row(&r.best, entry.k, &[]));
                    }
                    Ok(Answer::Top(r)) => {
                        let _ = writeln!(out, "  {spec}: {} substrings", r.items.len());
                        for item in r.items.iter().take(invocation.limit) {
                            let _ = writeln!(out, "    {}", format_row(item, entry.k, &[]));
                        }
                    }
                    Ok(Answer::Threshold(r)) => {
                        let _ = writeln!(
                            out,
                            "  {spec}: {} substrings above threshold",
                            r.items.len()
                        );
                        for item in r.items.iter().take(invocation.limit) {
                            let _ = writeln!(out, "    {}", format_row(item, entry.k, &[]));
                        }
                    }
                    Err(e) => {
                        let _ = writeln!(out, "  {spec}: error: {e}");
                    }
                }
                slot += 1;
            }
        }
    }

    if let Some(t) = invocation.merge_top {
        let merged = corpus.top_t_merged(t).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "corpus-wide top-{t}:");
        for hit in &merged {
            let k = corpus.entries()[hit.doc].k;
            let _ = writeln!(out, "  {:<24} {}", hit.name, format_row(&hit.item, k, &[]));
        }
    }
    if let Some(alpha) = invocation.merge_thresh {
        let merged = corpus
            .above_threshold_merged(alpha)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "corpus-wide substrings with X² > {alpha}: {}",
            merged.len()
        );
        for hit in merged.iter().take(invocation.limit) {
            let k = corpus.entries()[hit.doc].k;
            let _ = writeln!(out, "  {:<24} {}", hit.name, format_row(&hit.item, k, &[]));
        }
    }
    if invocation.stats {
        out.push_str(&format_cache_stats(&corpus));
    }
    Ok(out)
}

/// `serve`: boot the HTTP service over a corpus directory and block
/// until a shutdown signal (SIGINT/SIGTERM) drains it. The listening
/// address is printed (and flushed) before the accept loop starts, so
/// callers scripting against an ephemeral port can scrape it.
fn run_serve(invocation: &Invocation, dir: &str, create: bool) -> Result<String, String> {
    let mut corpus = if create {
        sigstr_corpus::Corpus::open_or_create(dir).map_err(|e| e.to_string())?
    } else {
        sigstr_corpus::Corpus::open(dir).map_err(|e| e.to_string())?
    };
    if let Some(mb) = invocation.budget_mb {
        corpus.set_budget(mb << 20);
    }
    corpus.set_mmap(invocation.mmap);
    let documents = corpus.len();
    let mut config = sigstr_server::ServerConfig::default();
    if let Some(addr) = &invocation.addr {
        config.addr = addr.clone();
    }
    if let Some(threads) = invocation.threads {
        config.threads = threads;
    }
    if let Some(depth) = invocation.queue_depth {
        config.queue_depth = depth;
    }
    config.trace.enabled = !invocation.no_trace;
    if let Some(ms) = invocation.slow_ms {
        config.trace.slow_us = Some(ms.saturating_mul(1_000));
    }
    let server = sigstr_server::Server::bind(corpus, config)
        .map_err(|e| format!("cannot bind server: {e}"))?;
    println!(
        "listening on {} ({documents} documents); SIGINT/SIGTERM for graceful shutdown",
        server.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    shutdown_on_signals(server.handle());
    let summary = server.run().map_err(|e| format!("server failed: {e}"))?;
    Ok(format!(
        "drained: served {} requests, rejected {} at admission\n",
        summary.requests, summary.rejected
    ))
}

/// `route`: scatter-gather over shard servers. With `--plan`, print the
/// consistent-hash placement (`name<TAB>shard<TAB>addr`) for the given
/// document names and exit — the running router uses the exact same
/// mapping, so operators partition a corpus with this before indexing.
/// Otherwise boot the router and block until a shutdown signal drains
/// it, like `serve`.
fn run_route(
    invocation: &Invocation,
    shards: &[String],
    deadline_ms: Option<u64>,
    retries: Option<u32>,
    hedge_ms: Option<u64>,
    no_hedge: bool,
    plan: Option<&[String]>,
) -> Result<String, String> {
    use std::time::Duration;
    let mut config = sigstr_router::RouterConfig::new(shards.to_vec());
    if let Some(names) = plan {
        let ring = sigstr_router::hash::Ring::new(shards.len(), config.vnodes);
        let mut out = String::new();
        for name in names {
            let shard = ring.shard_for(name);
            let _ = writeln!(out, "{name}\t{shard}\t{}", shards[shard]);
        }
        return Ok(out);
    }
    if let Some(addr) = &invocation.addr {
        config.service.addr = addr.clone();
    }
    if let Some(threads) = invocation.threads {
        config.service.threads = threads;
    }
    if let Some(depth) = invocation.queue_depth {
        config.service.queue_depth = depth;
    }
    config.service.trace.enabled = !invocation.no_trace;
    if let Some(ms) = invocation.slow_ms {
        config.service.trace.slow_us = Some(ms.saturating_mul(1_000));
    }
    if let Some(ms) = deadline_ms {
        config.deadline = Duration::from_millis(ms);
    }
    if let Some(budget) = retries {
        config.retries = budget;
    }
    if no_hedge {
        config.hedge = sigstr_router::HedgePolicy::Disabled;
    } else if let Some(ms) = hedge_ms {
        config.hedge = sigstr_router::HedgePolicy::Fixed(Duration::from_millis(ms));
    }
    let router = sigstr_router::RouterServer::bind(config)
        .map_err(|e| format!("cannot bind router: {e}"))?;
    println!(
        "listening on {} ({} shards); SIGINT/SIGTERM for graceful shutdown",
        router.local_addr(),
        shards.len()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    shutdown_on_signals(router.handle());
    let summary = router.run().map_err(|e| format!("router failed: {e}"))?;
    Ok(format!(
        "drained: routed {} requests, rejected {} at admission\n",
        summary.requests, summary.rejected
    ))
}

/// `rebalance`: reshape a shard fleet's document placement on disk.
/// With `--dry-run`, print the move plan (`name<TAB>from<TAB>to`) and
/// exit. Otherwise execute it: each document's snapshot is copied to
/// its target directory, checksum-verified, committed into the target
/// manifest, and only then released from the source — so an
/// interrupted run never loses a document, and re-running with the
/// same `--to` converges (a journal file detects and resumes
/// half-finished runs).
fn run_rebalance(
    from: &[String],
    to: &[String],
    vnodes: Option<usize>,
    journal: Option<&str>,
    dry_run: bool,
) -> Result<String, String> {
    use std::path::PathBuf;
    let from: Vec<PathBuf> = from.iter().map(PathBuf::from).collect();
    let to: Vec<PathBuf> = to.iter().map(PathBuf::from).collect();
    let vnodes = vnodes.unwrap_or(sigstr_router::DEFAULT_VNODES);
    let mut out = String::new();
    if dry_run {
        let plan = sigstr_router::rebalance::plan(&from, &to, vnodes)
            .map_err(|e| format!("rebalance plan failed: {e}"))?;
        for step in &plan.moves {
            let _ = writeln!(
                out,
                "{}\t{}\t{}",
                step.entry.name,
                step.src.display(),
                step.dst.display()
            );
        }
        let _ = writeln!(
            out,
            "plan: {} of {} documents to move ({} already placed)",
            plan.moves.len(),
            plan.total(),
            plan.already_placed
        );
        return Ok(out);
    }
    let mut options = sigstr_router::rebalance::RebalanceOptions::new(vnodes);
    options.journal = journal.map(PathBuf::from);
    let report = sigstr_router::rebalance::execute(&from, &to, &options)
        .map_err(|e| format!("rebalance failed: {e}"))?;
    for name in &report.moved {
        let _ = writeln!(out, "moved\t{name}");
    }
    let _ = writeln!(
        out,
        "rebalanced: moved {} of {} documents ({} already placed)",
        report.moved.len(),
        report.total,
        report.already_placed
    );
    Ok(out)
}

/// Arrange a graceful [`sigstr_server::ServerHandle::shutdown`] on
/// SIGINT/SIGTERM. Signal disposition is process-global state, so this
/// is wired here in the CLI — the server library stays policy-free. The
/// handler itself only flips an atomic (async-signal-safe); a watcher
/// thread turns the flip into the drain.
#[cfg(unix)]
fn shutdown_on_signals(handle: sigstr_server::ServerHandle) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SIGNALED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: installing a handler that only stores to a static atomic
    // is async-signal-safe; `signal` is provided by libc, which std
    // already links.
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
    std::thread::Builder::new()
        .name("sigstr-signal-watch".into())
        .spawn(move || loop {
            if SIGNALED.load(Ordering::SeqCst) {
                handle.shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}

/// Non-unix builds: no signal hook; embedders stop the server through
/// its own [`sigstr_server::ServerHandle`].
#[cfg(not(unix))]
fn shutdown_on_signals(_handle: sigstr_server::ServerHandle) {}

/// Run a parsed invocation against loaded input bytes; returns the output
/// text (testable without touching the filesystem for the mining
/// commands; index/corpus commands manage their own files).
pub fn run(invocation: &Invocation, raw: &[u8]) -> Result<String, String> {
    if invocation.no_simd {
        // One-way for this process run: forcing scalar is bit-identical,
        // so nothing downstream needs to know.
        sigstr_core::simd::set_force_scalar(true);
    }
    match &invocation.command {
        Command::Batch => return run_batch(invocation, raw),
        Command::IndexBuild { out } => return run_index_build(invocation, raw, out),
        Command::IndexInfo => return run_index_info(invocation),
        Command::CorpusAdd { dir, name, live } => {
            return run_corpus_add(invocation, raw, dir, name, *live)
        }
        Command::Append { addr, doc } => return run_append(raw, addr, doc),
        Command::Watch {
            addr,
            doc,
            window,
            threshold,
            top_t,
            once,
            timeout_ms,
        } => return run_watch(addr, doc, *window, *threshold, *top_t, *once, *timeout_ms),
        Command::CorpusQuery { dir } => return run_corpus_query(invocation, dir),
        Command::CorpusList { dir } => return run_corpus_list(invocation, dir),
        Command::Serve { dir, create } => return run_serve(invocation, dir, *create),
        Command::Trace { addr, id } => return run_trace(invocation, addr, id.as_deref()),
        Command::Route {
            shards,
            deadline_ms,
            retries,
            hedge_ms,
            no_hedge,
            plan,
        } => {
            return run_route(
                invocation,
                shards,
                *deadline_ms,
                *retries,
                *hedge_ms,
                *no_hedge,
                plan.as_deref(),
            )
        }
        Command::Rebalance {
            from,
            to,
            vnodes,
            journal,
            dry_run,
        } => return run_rebalance(from, to, *vnodes, journal.as_deref(), *dry_run),
        _ => {}
    }
    let (seq, alphabet) = build_sequence(invocation.input_mode, raw)?;
    let model = resolve_model(&invocation.model, &seq)?;
    let k = seq.k();
    // The engine-served path (`ours`) honors `--layout`; baselines scan
    // without a count index worth configuring.
    let engine = if invocation.algorithm == Algorithm::Ours {
        Some(
            Engine::with_layout(&seq, model.clone(), invocation.layout)
                .map_err(|e| e.to_string())?,
        )
    } else {
        None
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "n = {}, k = {} (alphabet {:?})",
        seq.len(),
        k,
        alphabet.iter().map(|&b| b as char).collect::<String>()
    );
    let push_family = |out: &mut String, best: &Scored, n: usize, k: usize| {
        let a = sigstr_core::significance::assess(best, n, k);
        let _ = writeln!(
            out,
            "family-wise p = {:.3e} (Sidak over ~{} effective tests)",
            a.p_family, a.m_effective as u64
        );
    };
    let push_stats = |out: &mut String, stats: &sigstr_core::ScanStats| {
        let _ = writeln!(
            out,
            "stats: examined {} substrings, {} skip events, {} skipped",
            stats.examined, stats.skips, stats.skipped
        );
    };
    match invocation.command {
        Command::Mss => {
            let r = match invocation.algorithm {
                Algorithm::Ours => engine.as_ref().expect("built above").mss(),
                Algorithm::Trivial => baseline::trivial::find_mss(&seq, &model),
                Algorithm::Arlm => baseline::arlm::find_mss(&seq, &model),
                Algorithm::Agmm => baseline::agmm::find_mss(&seq, &model),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{}", format_row(&r.best, k, &alphabet));
            if invocation.family {
                push_family(&mut out, &r.best, seq.len(), k);
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::Top { t } => {
            // `arlm`/`agmm` have no top-t variant; they (and `ours`
            // without an engine) fall back to the one-shot exact API.
            let r = match (invocation.algorithm, &engine) {
                (Algorithm::Trivial, _) => baseline::trivial::top_t(&seq, &model, t),
                (_, Some(engine)) => engine.top_t(t),
                (_, None) => sigstr_core::top_t(&seq, &model, t),
            }
            .map_err(|e| e.to_string())?;
            for item in r.items.iter().take(invocation.limit) {
                let _ = writeln!(out, "{}", format_row(item, k, &alphabet));
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::Thresh { alpha } => {
            let alpha = if alpha < 0.0 {
                // Negative marker: derive from significance level.
                sigstr_stats::pearson::threshold_for_significance(-alpha, k)
            } else {
                alpha
            };
            let _ = writeln!(out, "alpha0 = {alpha:.4}");
            let r = match (invocation.algorithm, &engine) {
                (Algorithm::Trivial, _) => baseline::trivial::above_threshold(&seq, &model, alpha),
                (_, Some(engine)) => engine.above_threshold(alpha),
                (_, None) => sigstr_core::above_threshold(&seq, &model, alpha),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{} substrings above threshold", r.items.len());
            for item in r.items.iter().take(invocation.limit) {
                let _ = writeln!(out, "{}", format_row(item, k, &alphabet));
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::MinLen { gamma } => {
            let r = match (invocation.algorithm, &engine) {
                (Algorithm::Trivial, _) => baseline::trivial::mss_min_length(&seq, &model, gamma),
                (_, Some(engine)) => engine.mss_min_length(gamma),
                (_, None) => sigstr_core::mss_min_length(&seq, &model, gamma),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{}", format_row(&r.best, k, &alphabet));
            if invocation.family {
                push_family(&mut out, &r.best, seq.len(), k);
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::MaxLen { w } => {
            let r = match &engine {
                Some(engine) => engine.mss_max_length(w),
                None => sigstr_core::mss_max_length(&seq, &model, w),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{}", format_row(&r.best, k, &alphabet));
            if invocation.family {
                push_family(&mut out, &r.best, seq.len(), k);
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        _ => unreachable!("filesystem-backed commands are dispatched above"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sigstr-cli-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_mss_defaults() {
        let inv = parse_args(&argv(&["mss", "input.txt"])).unwrap();
        assert_eq!(inv.command, Command::Mss);
        assert_eq!(inv.input, "input.txt");
        assert_eq!(inv.algorithm, Algorithm::Ours);
        assert_eq!(inv.model, ModelSpec::Empirical);
        assert_eq!(inv.layout, CountsLayout::Auto);
        assert_eq!(inv.input_mode, InputMode::Text);
        assert_eq!(inv.limit, 20);
        assert!(!inv.stats);
        assert!(inv.reads_raw_input());
    }

    #[test]
    fn parse_full_flags() {
        let inv = parse_args(&argv(&[
            "top",
            "-",
            "--t",
            "7",
            "--algorithm",
            "trivial",
            "--probs",
            "0.25,0.75",
            "--limit",
            "3",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(inv.command, Command::Top { t: 7 });
        assert_eq!(inv.algorithm, Algorithm::Trivial);
        assert_eq!(inv.model, ModelSpec::Explicit(vec![0.25, 0.75]));
        assert_eq!(inv.limit, 3);
        assert!(inv.stats);
    }

    #[test]
    fn parse_layout_flag() {
        for (text, layout) in [
            ("auto", CountsLayout::Auto),
            ("flat", CountsLayout::Flat),
            ("blocked", CountsLayout::Blocked),
        ] {
            let inv = parse_args(&argv(&["mss", "f", "--layout", text])).unwrap();
            assert_eq!(inv.layout, layout);
        }
        assert!(parse_args(&argv(&["mss", "f", "--layout", "weird"])).is_err());
        // Accepted by every subcommand.
        assert!(parse_args(&argv(&["batch", "f", "--query", "mss", "--layout", "flat"])).is_ok());
        assert!(parse_args(&argv(&[
            "index", "build", "f", "--out", "o.snap", "--layout", "blocked"
        ]))
        .is_ok());
    }

    #[test]
    fn parse_input_modes() {
        let inv = parse_args(&argv(&["mss", "f", "--series"])).unwrap();
        assert_eq!(inv.input_mode, InputMode::Series);
        let inv = parse_args(&argv(&["mss", "f", "--csv-col", "2"])).unwrap();
        assert_eq!(inv.input_mode, InputMode::CsvColumn(2));
        assert!(parse_args(&argv(&["mss", "f", "--csv-col", "x"])).is_err());
    }

    #[test]
    fn parse_thresh_variants() {
        let a = parse_args(&argv(&["thresh", "f", "--alpha", "12.5"])).unwrap();
        assert_eq!(a.command, Command::Thresh { alpha: 12.5 });
        let b = parse_args(&argv(&["thresh", "f", "--level", "0.01"])).unwrap();
        assert_eq!(b.command, Command::Thresh { alpha: -0.01 });
        assert!(parse_args(&argv(&["thresh", "f"])).is_err());
        assert!(parse_args(&argv(&["thresh", "f", "--alpha", "1", "--level", "0.1"])).is_err());
        assert!(parse_args(&argv(&["thresh", "f", "--level", "1.5"])).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["--help"])).is_err());
        assert!(parse_args(&argv(&["mss"])).is_err());
        assert!(parse_args(&argv(&["frobnicate", "f"])).is_err());
        assert!(parse_args(&argv(&["top", "f"])).is_err()); // missing --t
        assert!(parse_args(&argv(&["minlen", "f"])).is_err()); // missing --gamma
        assert!(parse_args(&argv(&["mss", "f", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["mss", "f", "--algorithm", "bogus"])).is_err());
        assert!(parse_args(&argv(&["mss", "f", "--limit"])).is_err());
    }

    #[test]
    fn parse_route_flags() {
        let inv = parse_args(&argv(&[
            "route",
            "--shards",
            "127.0.0.1:9001, 127.0.0.1:9002",
            "--addr",
            "127.0.0.1:0",
            "--deadline-ms",
            "500",
            "--retries",
            "1",
            "--no-hedge",
        ]))
        .unwrap();
        assert!(!inv.reads_raw_input());
        assert_eq!(inv.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            inv.command,
            Command::Route {
                shards: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
                deadline_ms: Some(500),
                retries: Some(1),
                hedge_ms: None,
                no_hedge: true,
                plan: None,
            }
        );
        let inv = parse_args(&argv(&["route", "--shards", "h:1", "--hedge-ms", "15"])).unwrap();
        match inv.command {
            Command::Route {
                hedge_ms, no_hedge, ..
            } => {
                assert_eq!(hedge_ms, Some(15));
                assert!(!no_hedge);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parse_route_errors() {
        assert!(parse_args(&argv(&["route"])).is_err()); // missing --shards
        assert!(parse_args(&argv(&["route", "--shards", ""])).is_err()); // empty fleet
        assert!(parse_args(&argv(&[
            "route",
            "--shards",
            "h:1",
            "--hedge-ms",
            "5",
            "--no-hedge"
        ]))
        .is_err());
        assert!(parse_args(&argv(&["route", "--shards", "h:1", "--deadline-ms", "x"])).is_err());
    }

    #[test]
    fn route_plan_prints_ring_assignments() {
        let inv = parse_args(&argv(&[
            "route",
            "--shards",
            "h1:9001,h2:9002",
            "--plan",
            "bin-a,bin-b,tri-c",
        ]))
        .unwrap();
        let out = run(&inv, &[]).unwrap();
        // The plan must be the router's own ring mapping, line per name.
        let config = sigstr_router::RouterConfig::new(vec!["h1:9001".into(), "h2:9002".into()]);
        let ring = sigstr_router::hash::Ring::new(2, config.vnodes);
        let shards = ["h1:9001", "h2:9002"];
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for (line, name) in lines.iter().zip(["bin-a", "bin-b", "tri-c"]) {
            let shard = ring.shard_for(name);
            assert_eq!(*line, format!("{name}\t{shard}\t{}", shards[shard]));
        }
    }

    #[test]
    fn parse_rebalance_flags() {
        let inv = parse_args(&argv(&[
            "rebalance",
            "--from",
            "/data/s0, /data/s1",
            "--to",
            "/data/s0,/data/s1,/data/s2",
            "--vnodes",
            "32",
            "--journal",
            "/data/s0/rb.journal",
            "--dry-run",
        ]))
        .unwrap();
        assert!(!inv.reads_raw_input());
        assert_eq!(
            inv.command,
            Command::Rebalance {
                from: vec!["/data/s0".into(), "/data/s1".into()],
                to: vec!["/data/s0".into(), "/data/s1".into(), "/data/s2".into()],
                vnodes: Some(32),
                journal: Some("/data/s0/rb.journal".into()),
                dry_run: true,
            }
        );
        let inv = parse_args(&argv(&["rebalance", "--from", "a", "--to", "a,b"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Rebalance {
                from: vec!["a".into()],
                to: vec!["a".into(), "b".into()],
                vnodes: None,
                journal: None,
                dry_run: false,
            }
        );
    }

    #[test]
    fn parse_rebalance_errors() {
        assert!(parse_args(&argv(&["rebalance"])).is_err()); // missing both
        assert!(parse_args(&argv(&["rebalance", "--from", "a"])).is_err()); // no --to
        assert!(parse_args(&argv(&["rebalance", "--to", "a,b"])).is_err()); // no --from
        assert!(parse_args(&argv(&["rebalance", "--from", "", "--to", "a"])).is_err());
        assert!(parse_args(&argv(&["rebalance", "--from", "a", "--to", ""])).is_err());
        assert!(parse_args(&argv(&[
            "rebalance",
            "--from",
            "a",
            "--to",
            "a,b",
            "--vnodes",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn rebalance_moves_documents_between_corpus_dirs() {
        let base = std::env::temp_dir().join(format!(
            "sigstr-cli-rebalance-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let s0 = base.join("s0");
        let s1 = base.join("s1");
        std::fs::create_dir_all(&s0).unwrap();
        std::fs::create_dir_all(&s1).unwrap();
        let names = [
            "doc-a", "doc-b", "doc-c", "doc-d", "doc-e", "doc-f", "doc-g", "doc-h",
        ];
        for name in names {
            let inv = parse_args(&argv(&[
                "corpus",
                "add",
                s0.to_str().unwrap(),
                "-",
                "--name",
                name,
            ]))
            .unwrap();
            run(&inv, b"abracadabra arbor abracadabra").unwrap();
        }
        // The CLI's plan must be the router's ring: growing 1 -> 2
        // moves exactly the names the two-shard ring sends to shard 1.
        let ring = sigstr_router::hash::Ring::new(2, sigstr_router::DEFAULT_VNODES);
        let expected: Vec<&str> = names
            .iter()
            .copied()
            .filter(|name| ring.shard_for(name) == 1)
            .collect();

        let layout = format!("{},{}", s0.display(), s1.display());
        let dry = parse_args(&argv(&[
            "rebalance",
            "--from",
            s0.to_str().unwrap(),
            "--to",
            &layout,
            "--dry-run",
        ]))
        .unwrap();
        let out = run(&dry, &[]).unwrap();
        let planned = out.lines().filter(|l| l.contains('\t')).count();
        assert_eq!(planned, expected.len());
        assert!(out.contains(&format!(
            "plan: {} of {} documents to move",
            expected.len(),
            names.len()
        )));
        // Dry run touches nothing: everything still lives on s0.
        for name in names {
            assert!(
                s0.join(format!("{name}.snap")).exists(),
                "{name} moved early"
            );
        }

        let exec = parse_args(&argv(&[
            "rebalance",
            "--from",
            s0.to_str().unwrap(),
            "--to",
            &layout,
        ]))
        .unwrap();
        let out = run(&exec, &[]).unwrap();
        for name in &expected {
            assert!(
                out.contains(&format!("moved\t{name}")),
                "missing {name}:\n{out}"
            );
        }
        assert!(out.contains(&format!(
            "moved {} of {} documents",
            expected.len(),
            names.len()
        )));
        // Converged: a second run has nothing left to do.
        let out = run(&exec, &[]).unwrap();
        assert!(out.contains(&format!("moved 0 of {} documents", names.len())));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn parse_index_and_corpus_commands() {
        let inv = parse_args(&argv(&["index", "build", "in.txt", "--out", "out.snap"])).unwrap();
        assert_eq!(
            inv.command,
            Command::IndexBuild {
                out: "out.snap".into()
            }
        );
        assert_eq!(inv.input, "in.txt");
        assert!(inv.reads_raw_input());

        let inv = parse_args(&argv(&["index", "info", "doc.snap"])).unwrap();
        assert_eq!(inv.command, Command::IndexInfo);
        assert!(!inv.reads_raw_input());

        let inv = parse_args(&argv(&["corpus", "add", "dir", "in.txt", "--name", "d1"])).unwrap();
        assert_eq!(
            inv.command,
            Command::CorpusAdd {
                dir: "dir".into(),
                name: "d1".into(),
                live: false,
            }
        );
        assert_eq!(inv.input, "in.txt");

        let inv = parse_args(&argv(&["corpus", "query", "dir", "--query", "mss"])).unwrap();
        assert_eq!(inv.command, Command::CorpusQuery { dir: "dir".into() });
        assert!(!inv.reads_raw_input());
        let inv = parse_args(&argv(&["corpus", "query", "dir", "--merge-top", "5"])).unwrap();
        assert_eq!(inv.merge_top, Some(5));

        let inv = parse_args(&argv(&["corpus", "list", "dir"])).unwrap();
        assert_eq!(inv.command, Command::CorpusList { dir: "dir".into() });

        assert!(parse_args(&argv(&["index"])).is_err());
        assert!(parse_args(&argv(&["index", "bogus", "f"])).is_err());
        assert!(parse_args(&argv(&["index", "build", "f"])).is_err()); // no --out
        assert!(parse_args(&argv(&["corpus", "add", "dir", "f"])).is_err()); // no --name
        assert!(parse_args(&argv(&["corpus", "query", "dir"])).is_err()); // no queries
        assert!(parse_args(&argv(&["corpus", "bogus", "dir"])).is_err());
    }

    #[test]
    fn parse_serve_command() {
        let inv = parse_args(&argv(&["serve", "corpusdir"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Serve {
                dir: "corpusdir".into(),
                create: false,
            }
        );
        assert!(!inv.reads_raw_input());
        assert_eq!(inv.addr, None);

        let inv = parse_args(&argv(&["serve", "fresh", "--create"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Serve {
                dir: "fresh".into(),
                create: true,
            }
        );

        let inv = parse_args(&argv(&[
            "serve",
            "corpusdir",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "4",
            "--budget-mb",
            "64",
            "--queue-depth",
            "8",
        ]))
        .unwrap();
        assert_eq!(inv.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(inv.threads, Some(4));
        assert_eq!(inv.budget_mb, Some(64));
        assert_eq!(inv.queue_depth, Some(8));

        assert!(parse_args(&argv(&["serve"])).is_err()); // no directory
        assert!(parse_args(&argv(&["serve", "d", "--queue-depth", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "d", "--threads", "x"])).is_err());
    }

    #[test]
    fn parse_trace_flags_on_serve_and_route() {
        let inv = parse_args(&argv(&["serve", "d", "--no-trace", "--slow-ms", "250"])).unwrap();
        assert!(inv.no_trace);
        assert_eq!(inv.slow_ms, Some(250));
        let inv = parse_args(&argv(&[
            "route",
            "--shards",
            "127.0.0.1:9001",
            "--slow-ms",
            "100",
        ]))
        .unwrap();
        assert!(!inv.no_trace);
        assert_eq!(inv.slow_ms, Some(100));
        assert!(parse_args(&argv(&["serve", "d", "--slow-ms", "x"])).is_err());
    }

    #[test]
    fn parse_trace_command() {
        let inv = parse_args(&argv(&["trace", "127.0.0.1:8080"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Trace {
                addr: "127.0.0.1:8080".into(),
                id: None,
            }
        );
        assert!(!inv.reads_raw_input());

        let id = "00000000000000000000000000c0ffee";
        let inv = parse_args(&argv(&[
            "trace",
            "127.0.0.1:8080",
            "--id",
            id,
            "--limit",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            inv.command,
            Command::Trace {
                addr: "127.0.0.1:8080".into(),
                id: Some(id.into()),
            }
        );
        assert_eq!(inv.limit, 5);

        assert!(parse_args(&argv(&["trace"])).is_err()); // no address
        assert!(parse_args(&argv(&["trace", "a", "--id", "nothex"])).is_err());
        assert!(parse_args(&argv(&["trace", "a", "--id", "c0ffee"])).is_err()); // short
    }

    #[test]
    fn corpus_list_stats_prints_cache_counters() {
        let dir = temp_dir("list-stats");
        let corpus_dir = dir.join("c").display().to_string();
        let add = parse_args(&argv(&[
            "corpus",
            "add",
            &corpus_dir,
            "-",
            "--name",
            "d0",
            "--uniform",
        ]))
        .unwrap();
        run(&add, b"ababbbbbbab").unwrap();

        let plain = parse_args(&argv(&["corpus", "list", &corpus_dir])).unwrap();
        let out = run(&plain, b"").unwrap();
        assert!(!out.contains("cache:"), "{out}");

        let with_stats = parse_args(&argv(&["corpus", "list", &corpus_dir, "--stats"])).unwrap();
        let out = run(&with_stats, b"").unwrap();
        assert!(out.contains("d0"), "{out}");
        assert!(out.contains("snapshots on disk:"), "{out}");
        assert!(
            out.contains("cache: 0 hits, 0 loads (0 mmap, 0 read), 0 evictions"),
            "{out}"
        );
        assert!(out.contains("budget"), "{out}");

        // On the query path the counters are live: one load per doc.
        let query = parse_args(&argv(&[
            "corpus",
            "query",
            &corpus_dir,
            "--query",
            "mss",
            "--stats",
        ]))
        .unwrap();
        let out = run(&query, b"").unwrap();
        assert!(out.contains("1 loads"), "{out}");
        assert!(out.contains("1 resident engines"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_append_and_watch_commands() {
        let inv = parse_args(&argv(&[
            "append",
            "127.0.0.1:8080",
            "log.txt",
            "--doc",
            "log",
        ]))
        .unwrap();
        assert_eq!(
            inv.command,
            Command::Append {
                addr: "127.0.0.1:8080".into(),
                doc: "log".into(),
            }
        );
        assert_eq!(inv.input, "log.txt");
        assert!(inv.reads_raw_input());

        let inv = parse_args(&argv(&["watch", "127.0.0.1:8080", "--doc", "log"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Watch {
                addr: "127.0.0.1:8080".into(),
                doc: "log".into(),
                window: 64,
                threshold: 12.0,
                top_t: 4,
                once: false,
                timeout_ms: 10_000,
            }
        );
        assert!(!inv.reads_raw_input());

        let inv = parse_args(&argv(&[
            "watch",
            "h:1",
            "--doc",
            "log",
            "--window",
            "16",
            "--threshold",
            "8.5",
            "--top",
            "2",
            "--timeout-ms",
            "250",
            "--once",
        ]))
        .unwrap();
        assert_eq!(
            inv.command,
            Command::Watch {
                addr: "h:1".into(),
                doc: "log".into(),
                window: 16,
                threshold: 8.5,
                top_t: 2,
                once: true,
                timeout_ms: 250,
            }
        );

        assert!(parse_args(&argv(&["append"])).is_err()); // no addr
        assert!(parse_args(&argv(&["append", "h:1"])).is_err()); // no file
        assert!(parse_args(&argv(&["append", "h:1", "f"])).is_err()); // no --doc
        assert!(parse_args(&argv(&["watch", "h:1"])).is_err()); // no --doc
        assert!(parse_args(&argv(&["watch", "h:1", "--doc", "d", "--window", "0"])).is_err());
        assert!(parse_args(&argv(&["watch", "h:1", "--doc", "d", "--top", "0"])).is_err());
        assert!(parse_args(&argv(&["watch", "h:1", "--doc", "d", "--threshold", "x"])).is_err());
    }

    #[test]
    fn corpus_add_live_creates_an_appendable_document() {
        let dir = temp_dir("add-live");
        let corpus_dir = dir.join("c").display().to_string();
        let add = parse_args(&argv(&[
            "corpus",
            "add",
            &corpus_dir,
            "-",
            "--name",
            "log",
            "--live",
        ]))
        .unwrap();
        match &add.command {
            Command::CorpusAdd { live, .. } => assert!(live),
            other => panic!("parsed {other:?}"),
        }
        let out = run(&add, b"abababababababab").unwrap();
        assert!(out.contains("added live `log`"), "{out}");

        // The document accepts appends when reopened.
        let corpus = sigstr_corpus::Corpus::open(&corpus_dir).unwrap();
        assert!(corpus.is_live("log"));
        let outcome = corpus.append_live("log", b"abab").unwrap();
        assert_eq!(outcome.n, 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_and_watch_drive_a_live_server() {
        // Corpus with one live document, served over an ephemeral port.
        let dir = temp_dir("live-http");
        let corpus_dir = dir.join("c").display().to_string();
        let add = parse_args(&argv(&[
            "corpus",
            "add",
            &corpus_dir,
            "-",
            "--name",
            "log",
            "--live",
        ]))
        .unwrap();
        run(&add, b"abababababababababababababababab").unwrap();
        let corpus = sigstr_corpus::Corpus::open(&corpus_dir).unwrap();
        let server = sigstr_server::Server::bind(
            corpus,
            sigstr_server::ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                ..sigstr_server::ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        // A calm append reports geometry and no alerts.
        let append = parse_args(&argv(&["append", &addr, "-", "--doc", "log"])).unwrap();
        let out = run(&append, b"abab").unwrap();
        assert!(out.contains("appended to `log`: n = 36"), "{out}");
        assert!(!out.contains("alert"), "{out}");

        // Watch in follow mode from a thread; an anomalous append must
        // reach it through the long-poll. `--once` with a generous
        // timeout returns as soon as the batch arrives.
        let watcher = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let watch = parse_args(&argv(&[
                    "watch",
                    &addr,
                    "--doc",
                    "log",
                    "--window",
                    "16",
                    "--threshold",
                    "12",
                    "--timeout-ms",
                    "5000",
                    "--once",
                ]))
                .unwrap();
                run(&watch, &[])
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(300));
        let out = run(&append, b"bbbbbbbbbbbbbbbb").unwrap();
        assert!(out.contains("alert"), "anomaly must alert inline: {out}");
        let polled = watcher.join().unwrap().unwrap();
        assert!(
            polled.contains("alert"),
            "long-poll missed the alert: {polled}"
        );
        assert!(!polled.contains("0 alerts"), "{polled}");

        // Appending to an unknown document surfaces the server's error.
        let bad = parse_args(&argv(&["append", &addr, "-", "--doc", "ghost"])).unwrap();
        let err = run(&bad, b"abab").unwrap_err();
        assert!(err.contains("404"), "{err}");

        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_command_prints_a_span_tree_from_a_live_server() {
        let dir = temp_dir("trace-cli");
        let corpus_dir = dir.join("c").display().to_string();
        let add = parse_args(&argv(&["corpus", "add", &corpus_dir, "-", "--name", "doc"])).unwrap();
        run(&add, b"abababababbbabababababababababab").unwrap();
        let corpus = sigstr_corpus::Corpus::open(&corpus_dir).unwrap();
        let server = sigstr_server::Server::bind(
            corpus,
            sigstr_server::ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                ..sigstr_server::ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        // Nothing recorded yet.
        let trace = parse_args(&argv(&["trace", &addr])).unwrap();
        let out = run(&trace, &[]).unwrap();
        assert!(out.contains("no traces recorded"), "{out}");

        // One query, traced under a caller-chosen ID.
        let id = "00000000000000000000000000c11e47";
        let body = sigstr_server::json::Json::Obj(vec![
            ("doc".into(), sigstr_server::json::Json::Str("doc".into())),
            (
                "query".into(),
                sigstr_server::wire::query_to_json(&sigstr_core::Query::mss()),
            ),
        ])
        .encode()
        .unwrap();
        let mut conn = sigstr_server::client::ClientConn::connect(&addr).unwrap();
        let response = conn
            .request_with(
                "POST",
                "/v1/query",
                Some(&body),
                &[(sigstr_obs::TRACE_HEADER, id)],
            )
            .unwrap();
        assert_eq!(response.status, 200);

        // The server seals a trace only after the response bytes flush,
        // and `sigstr trace` dials its own connection — poll past that
        // window instead of racing it.
        let trace = parse_args(&argv(&["trace", &addr, "--id", id])).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let out = loop {
            let out = run(&trace, &[]).unwrap();
            if !out.contains("no traces recorded") || std::time::Instant::now() >= deadline {
                break out;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(out.contains(&format!("trace {id}")), "{out}");
        assert!(out.contains("/v1/query"), "{out}");
        assert!(out.contains("status 200"), "{out}");
        for span in ["parse", "scan", "write"] {
            assert!(out.contains(span), "missing `{span}` span: {out}");
        }
        assert!(out.contains("doc=doc"), "scan attrs missing: {out}");

        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_from_bytes_strips_whitespace() {
        let (seq, alphabet) = sequence_from_bytes(b"ab ba\nab\n").unwrap();
        assert_eq!(seq.len(), 6);
        assert_eq!(alphabet, vec![b'a', b'b']);
        assert!(sequence_from_bytes(b"aaaa").is_err()); // single symbol
        assert!(sequence_from_bytes(b"  \n").is_err()); // empty
    }

    #[test]
    fn build_sequence_series_modes() {
        let (seq, alphabet) = build_sequence(InputMode::Series, b"10\n11\n9\n12\n").unwrap();
        assert_eq!(seq.symbols(), &[1, 0, 1]); // up, down, up
        assert_eq!(alphabet, vec![b'd', b'u']);
        let (seq, _) =
            build_sequence(InputMode::CsvColumn(1), b"day,close\n1,10\n2,11\n3,9\n").unwrap();
        assert_eq!(seq.symbols(), &[1, 0]);
        // Typed errors surface with positions.
        let err = build_sequence(InputMode::Series, b"10\njunk\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = build_sequence(InputMode::Series, b"\xFF\xFE").unwrap_err();
        assert!(err.contains("UTF-8"), "{err}");
        let err = build_sequence(InputMode::CsvColumn(3), b"1,2\n").unwrap_err();
        assert!(err.contains("column 3"), "{err}");
    }

    #[test]
    fn resolve_model_variants() {
        let (seq, _) = sequence_from_bytes(b"aabab").unwrap();
        let emp = resolve_model(&ModelSpec::Empirical, &seq).unwrap();
        assert!((emp.p(0) - 0.6).abs() < 1e-12);
        let uni = resolve_model(&ModelSpec::Uniform, &seq).unwrap();
        assert!((uni.p(0) - 0.5).abs() < 1e-12);
        let exp = resolve_model(&ModelSpec::Explicit(vec![0.3, 0.7]), &seq).unwrap();
        assert!((exp.p(1) - 0.7).abs() < 1e-12);
        assert!(resolve_model(&ModelSpec::Explicit(vec![0.2, 0.3, 0.5]), &seq).is_err());
    }

    #[test]
    fn run_mss_end_to_end() {
        let inv = parse_args(&argv(&["mss", "-", "--uniform", "--stats"])).unwrap();
        let out = run(&inv, b"abababbbbbbbbabab").unwrap();
        assert!(out.contains("n = 17"));
        assert!(out.contains("X²"));
        assert!(out.contains("stats:"));
    }

    #[test]
    fn run_is_layout_invariant() {
        let data = b"abab bbbbbbbb abab";
        let flat = parse_args(&argv(&["mss", "-", "--uniform", "--layout", "flat"])).unwrap();
        let blocked = parse_args(&argv(&["mss", "-", "--uniform", "--layout", "blocked"])).unwrap();
        assert_eq!(run(&flat, data).unwrap(), run(&blocked, data).unwrap());
        let flat = parse_args(&argv(&[
            "thresh",
            "-",
            "--uniform",
            "--alpha",
            "2",
            "--layout",
            "flat",
        ]))
        .unwrap();
        let blocked = parse_args(&argv(&[
            "thresh",
            "-",
            "--uniform",
            "--alpha",
            "2",
            "--layout",
            "blocked",
        ]))
        .unwrap();
        assert_eq!(run(&flat, data).unwrap(), run(&blocked, data).unwrap());
    }

    #[test]
    fn run_series_mode_end_to_end() {
        let inv = parse_args(&argv(&["mss", "-", "--series", "--uniform"])).unwrap();
        let out = run(&inv, b"100\n101\n102\n103\n102\n101\n100\n99\n100\n101\n").unwrap();
        assert!(out.contains("alphabet \"du\""), "{out}");
        assert!(out.contains("X²"), "{out}");
        // Malformed series: typed error, no panic.
        let err = run(&inv, b"100\noops\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn run_top_and_thresh_and_minlen() {
        let data = b"abab bbbbbbbb abab";
        let top = parse_args(&argv(&["top", "-", "--t", "3", "--uniform"])).unwrap();
        let out = run(&top, data).unwrap();
        assert_eq!(out.lines().count(), 4); // header + 3 rows
        let thresh = parse_args(&argv(&["thresh", "-", "--alpha", "4", "--uniform"])).unwrap();
        let out = run(&thresh, data).unwrap();
        assert!(out.contains("substrings above threshold"));
        let minlen = parse_args(&argv(&["minlen", "-", "--gamma", "10", "--uniform"])).unwrap();
        let out = run(&minlen, data).unwrap();
        assert!(out.contains("len"));
    }

    #[test]
    fn parse_and_run_maxlen() {
        let inv = parse_args(&argv(&["maxlen", "-", "--w", "4", "--uniform"])).unwrap();
        assert_eq!(inv.command, Command::MaxLen { w: 4 });
        let out = run(&inv, b"ababbbbbbbabab").unwrap();
        assert!(out.contains("len"));
        assert!(parse_args(&argv(&["maxlen", "-"])).is_err()); // missing --w
    }

    #[test]
    fn parse_query_specs() {
        use sigstr_core::{Query, QueryKind};
        assert_eq!(parse_query_spec("mss").unwrap(), Query::mss());
        assert_eq!(parse_query_spec("top:7").unwrap(), Query::top_t(7));
        assert_eq!(
            parse_query_spec("thresh:4.5").unwrap(),
            Query::above_threshold(4.5)
        );
        assert_eq!(
            parse_query_spec("minlen:3").unwrap(),
            Query::mss_min_length(3)
        );
        assert_eq!(
            parse_query_spec("maxlen:9").unwrap(),
            Query::mss_max_length(9)
        );
        let ranged = parse_query_spec("mss@10..90").unwrap();
        assert_eq!(ranged.kind, QueryKind::Mss);
        assert_eq!(ranged.range, Some((10, 90)));
        assert!(parse_query_spec("bogus").is_err());
        assert!(parse_query_spec("top").is_err());
        assert!(parse_query_spec("top:x").is_err());
        assert!(parse_query_spec("mss@10..").is_err());
        assert!(parse_query_spec("mss@1-2").is_err());
        assert!(parse_query_spec("mss@90..10").is_err()); // empty range, eager
        assert!(parse_query_spec("mss@5..5").is_err());
    }

    #[test]
    fn parse_batch_command() {
        let inv = parse_args(&argv(&["batch", "-", "--query", "mss", "--query", "top:3"])).unwrap();
        assert_eq!(inv.command, Command::Batch);
        assert_eq!(inv.queries, vec!["mss".to_string(), "top:3".to_string()]);
        assert!(parse_args(&argv(&["batch", "-"])).is_err()); // no queries
        assert!(parse_args(&argv(&["batch", "-", "--query", "bogus"])).is_err());
    }

    #[test]
    fn run_batch_answers_per_document() {
        let inv = parse_args(&argv(&[
            "batch",
            "-",
            "--uniform",
            "--query",
            "mss",
            "--query",
            "top:2",
            "--query",
            "thresh:3.0",
            "--query",
            "mss@0..4",
        ]))
        .unwrap();
        let data = b"ababbbbbbab\nbababaaaaab\n\n";
        let out = run(&inv, data).unwrap();
        assert!(out.contains("doc 0: n = 11"), "{out}");
        assert!(out.contains("doc 1: n = 11"), "{out}");
        assert!(out.contains("  mss: "), "{out}");
        assert!(out.contains("  top:2: 2 substrings"), "{out}");
        assert!(out.contains("substrings above threshold"), "{out}");
        assert!(out.contains("  mss@0..4: "), "{out}");
        // Batch answers equal the one-shot CLI on the same line.
        let single = parse_args(&argv(&["mss", "-", "--uniform"])).unwrap();
        let single_out = run(&single, b"ababbbbbbab").unwrap();
        let batch_row = out
            .lines()
            .find(|l| l.starts_with("  mss: "))
            .unwrap()
            .trim_start_matches("  mss: ");
        assert!(
            single_out.contains(batch_row),
            "{single_out} vs {batch_row}"
        );
    }

    #[test]
    fn run_batch_reports_per_query_errors_in_place() {
        // minlen:100 is impossible for an 8-symbol document: the other
        // queries must still answer.
        let inv = parse_args(&argv(&[
            "batch",
            "-",
            "--uniform",
            "--query",
            "minlen:100",
            "--query",
            "mss",
        ]))
        .unwrap();
        let out = run(&inv, b"abbbbbab").unwrap();
        assert!(out.contains("minlen:100: error:"), "{out}");
        assert!(out.contains("  mss: "), "{out}");
    }

    #[test]
    fn run_batch_rejects_empty_input() {
        let inv = parse_args(&argv(&["batch", "-", "--query", "mss"])).unwrap();
        assert!(run(&inv, b"  \n \n").is_err());
        // A malformed document names its line.
        let err = run(&inv, b"abab\naaaa\n").unwrap_err();
        assert!(err.contains("doc 1 (input line 2)"), "{err}");
    }

    #[test]
    fn run_index_build_info_roundtrip() {
        let dir = temp_dir("index");
        let snap = dir.join("doc.snap").display().to_string();
        let inv = parse_args(&argv(&[
            "index",
            "build",
            "-",
            "--out",
            &snap,
            "--uniform",
            "--layout",
            "blocked",
        ]))
        .unwrap();
        let out = run(&inv, b"ababbbbbbababbbbab").unwrap();
        assert!(out.contains("layout blocked"), "{out}");
        assert!(out.contains("n = 18"), "{out}");

        let info = parse_args(&argv(&["index", "info", &snap])).unwrap();
        let out = run(&info, b"").unwrap();
        assert!(out.contains("snapshot v1"), "{out}");
        assert!(out.contains("layout blocked"), "{out}");
        assert!(out.contains("section symbols"), "{out}");
        // The integrity pass: length status, alignment, and per-section
        // checksums all report healthy on a pristine snapshot.
        assert!(out.contains("matches the section table"), "{out}");
        assert!(out.contains("64-byte aligned"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
        for line in out.lines().filter(|l| l.contains("  section ")) {
            assert!(line.ends_with(" ok"), "{line}");
        }

        // Corrupt one payload byte (the last section's first byte — the
        // file's final bytes are alignment padding, which no checksum
        // covers): the section flips to MISMATCH but the listing still
        // renders.
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = sigstr_core::snapshot::read_info_path(&snap)
            .unwrap()
            .sections
            .iter()
            .map(|s| s.offset as usize)
            .max()
            .unwrap();
        bytes[last] ^= 0xFF;
        let corrupt = dir.join("corrupt.snap");
        std::fs::write(&corrupt, &bytes).unwrap();
        let info = parse_args(&argv(&["index", "info", &corrupt.display().to_string()])).unwrap();
        let out = run(&info, b"").unwrap();
        assert!(out.contains("MISMATCH"), "{out}");

        // A truncated tail is called out by the file-length line.
        bytes[last] ^= 0xFF;
        bytes.pop();
        std::fs::write(&corrupt, &bytes).unwrap();
        let out = run(&info, b"").unwrap();
        assert!(out.contains("section table implies"), "{out}");

        // Missing file: clean error.
        let missing = parse_args(&argv(&["index", "info", "no-such.snap"])).unwrap();
        assert!(run(&missing, b"").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_and_no_simd_flags() {
        let dir = temp_dir("mmap-flags");
        let corpus_dir = dir.join("c").display().to_string();
        let add = parse_args(&argv(&[
            "corpus",
            "add",
            &corpus_dir,
            "-",
            "--name",
            "d0",
            "--uniform",
        ]))
        .unwrap();
        assert!(!add.mmap && !add.no_simd);
        run(&add, b"ababbbbbbab").unwrap();

        // `--mmap` answers identically and reports its loads as mapped
        // (on targets with the mmap loader; elsewhere they count as
        // reads — either way the split is printed).
        let plain = parse_args(&argv(&["corpus", "query", &corpus_dir, "--query", "mss"])).unwrap();
        let mapped = parse_args(&argv(&[
            "corpus",
            "query",
            &corpus_dir,
            "--query",
            "mss",
            "--stats",
            "--mmap",
        ]))
        .unwrap();
        assert!(mapped.mmap);
        let plain_out = run(&plain, b"").unwrap();
        let mapped_out = run(&mapped, b"").unwrap();
        assert!(mapped_out.contains("mmap"), "{mapped_out}");
        assert!(mapped_out.contains("lazy verifications"), "{mapped_out}");
        assert!(
            mapped_out.starts_with(&plain_out),
            "{plain_out} vs {mapped_out}"
        );

        // `--no-simd` forces the scalar kernels; answers are pinned
        // bit-identical, so the rendered output matches exactly.
        let simd_out = run(
            &parse_args(&argv(&["mss", "-", "--uniform"])).unwrap(),
            b"abababbbbbbbbabab",
        )
        .unwrap();
        let scalar_inv = parse_args(&argv(&["mss", "-", "--uniform", "--no-simd"])).unwrap();
        assert!(scalar_inv.no_simd);
        let scalar_out = run(&scalar_inv, b"abababbbbbbbbabab").unwrap();
        assert_eq!(simd_out, scalar_out);
        // Un-force for the rest of the test binary.
        sigstr_core::simd::set_force_scalar(false);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_corpus_lifecycle_end_to_end() {
        let dir = temp_dir("corpus");
        let corpus_dir = dir.join("c").display().to_string();
        for (name, data) in [("d0", &b"ababbbbbbab"[..]), ("d1", &b"bababaaaaab"[..])] {
            let inv = parse_args(&argv(&[
                "corpus",
                "add",
                &corpus_dir,
                "-",
                "--name",
                name,
                "--uniform",
            ]))
            .unwrap();
            let out = run(&inv, data).unwrap();
            assert!(out.contains(&format!("added `{name}`")), "{out}");
        }
        let list = parse_args(&argv(&["corpus", "list", &corpus_dir])).unwrap();
        let out = run(&list, b"").unwrap();
        assert!(out.contains("2 documents"), "{out}");
        assert!(out.contains("d0") && out.contains("d1"), "{out}");

        let query = parse_args(&argv(&[
            "corpus",
            "query",
            &corpus_dir,
            "--query",
            "mss",
            "--query",
            "top:2",
            "--merge-top",
            "3",
        ]))
        .unwrap();
        let out = run(&query, b"").unwrap();
        assert!(out.contains("doc 0 `d0`"), "{out}");
        assert!(out.contains("doc 1 `d1`"), "{out}");
        assert!(out.contains("corpus-wide top-3:"), "{out}");
        // The corpus answer for d0's mss equals the one-shot CLI.
        let single = parse_args(&argv(&["mss", "-", "--uniform"])).unwrap();
        let single_out = run(&single, b"ababbbbbbab").unwrap();
        let corpus_row = out
            .lines()
            .find(|l| l.starts_with("  mss: "))
            .unwrap()
            .trim_start_matches("  mss: ");
        assert!(single_out.contains(corpus_row), "{single_out} vs {out}");
        // Unknown corpus: clean error.
        let bad = parse_args(&argv(&["corpus", "query", "no-such-dir", "--query", "mss"])).unwrap();
        assert!(run(&bad, b"").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn family_flag_prints_corrected_pvalue() {
        let inv = parse_args(&argv(&["mss", "-", "--uniform", "--family"])).unwrap();
        assert!(inv.family);
        let out = run(&inv, b"abababbbbbbbbbbabab").unwrap();
        assert!(out.contains("family-wise p ="), "{out}");
    }

    #[test]
    fn run_level_threshold_derives_alpha() {
        let inv = parse_args(&argv(&["thresh", "-", "--level", "0.001", "--uniform"])).unwrap();
        let out = run(&inv, b"abababbbbbbbbbbbbbbbabab").unwrap();
        assert!(out.contains("alpha0 = 10.82"), "{out}");
    }

    #[test]
    fn run_all_algorithms_agree_on_obvious_input() {
        let data = b"abababab bbbbbbbbbbbb abababab";
        for algo in ["ours", "trivial", "arlm"] {
            let inv = parse_args(&argv(&["mss", "-", "--algorithm", algo, "--uniform"])).unwrap();
            let out = run(&inv, data).unwrap();
            assert!(out.contains("X²"), "algorithm {algo}");
        }
    }

    #[test]
    fn baseline_algorithms_fall_back_for_variant_commands() {
        // `arlm`/`agmm` only implement MSS; top/thresh/minlen must fall
        // back to the exact one-shot API instead of panicking.
        let data = b"abab bbbbbbbb abab";
        for algo in ["arlm", "agmm"] {
            let top = parse_args(&argv(&[
                "top",
                "-",
                "--t",
                "2",
                "--algorithm",
                algo,
                "--uniform",
            ]))
            .unwrap();
            assert!(run(&top, data).unwrap().contains("X²"), "top/{algo}");
            let thresh = parse_args(&argv(&[
                "thresh",
                "-",
                "--alpha",
                "3",
                "--algorithm",
                algo,
                "--uniform",
            ]))
            .unwrap();
            assert!(
                run(&thresh, data).unwrap().contains("above threshold"),
                "thresh/{algo}"
            );
            let minlen = parse_args(&argv(&[
                "minlen",
                "-",
                "--gamma",
                "5",
                "--algorithm",
                algo,
                "--uniform",
            ]))
            .unwrap();
            assert!(run(&minlen, data).unwrap().contains("len"), "minlen/{algo}");
        }
    }
}
