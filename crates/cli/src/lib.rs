//! Implementation of the `sigstr` command-line tool.
//!
//! Subcommands mirror the paper's four problems:
//!
//! ```text
//! sigstr mss    <file> [options]           # Problem 1
//! sigstr top    <file> --t 10 [options]    # Problem 2
//! sigstr thresh <file> --alpha 20 [opts]   # Problem 3 (or --level 0.001)
//! sigstr minlen <file> --gamma 50 [opts]   # Problem 4
//! sigstr batch  <file> --query mss --query top:5 ...   # engine-served
//! ```
//!
//! Input is a text file whose bytes are the string (newlines ignored);
//! distinct bytes map to alphabet symbols in first-appearance order. The
//! null model defaults to the empirical (maximum-likelihood) distribution
//! and can be overridden with `--uniform` or `--probs 0.2,0.8`.
//!
//! `batch` treats **each non-empty line as its own document**: one
//! [`sigstr_core::Engine`] is built per document and every `--query` is
//! answered from it over one persistent worker pool
//! ([`sigstr_core::Batch`]) — the index-once/query-many serving path.
//! Query specs: `mss`, `top:T`, `thresh:A`, `minlen:G`, `maxlen:W`, each
//! optionally range-restricted with an `@L..R` suffix (`mss@10..90`).
//!
//! The argument parser is hand-rolled (the workspace's offline dependency
//! policy has no CLI crate) and fully unit-tested.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt::Write as _;

use sigstr_core::{baseline, Model, Scored, Sequence};

/// Which mining algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's pruned O(n^{3/2}) algorithm (default).
    Ours,
    /// Exhaustive O(n²) scan.
    Trivial,
    /// Local-extrema baseline.
    Arlm,
    /// Linear-time heuristic.
    Agmm,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ours" => Ok(Self::Ours),
            "trivial" => Ok(Self::Trivial),
            "arlm" => Ok(Self::Arlm),
            "agmm" => Ok(Self::Agmm),
            other => Err(format!(
                "unknown algorithm `{other}` (expected ours|trivial|arlm|agmm)"
            )),
        }
    }
}

/// Which problem variant to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Problem 1: the most significant substring.
    Mss,
    /// Problem 2: top-t substrings.
    Top {
        /// Number of substrings to report.
        t: usize,
    },
    /// Problem 3: all substrings above a chi-square threshold.
    Thresh {
        /// The chi-square cutoff `α₀`.
        alpha: f64,
    },
    /// Problem 4: MSS among substrings longer than `γ₀`.
    MinLen {
        /// The length cutoff `Γ₀`.
        gamma: usize,
    },
    /// Window-constrained MSS: substrings of length at most `w`.
    MaxLen {
        /// The window size `w`.
        w: usize,
    },
    /// Engine-served batch mode: one document per input line, every
    /// `--query` answered from that document's engine.
    Batch,
}

/// Null-model selection.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Maximum-likelihood estimate from the input (default).
    Empirical,
    /// Uniform over the observed alphabet.
    Uniform,
    /// Explicit probabilities (must match the alphabet size).
    Explicit(Vec<f64>),
}

/// Parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The problem variant.
    pub command: Command,
    /// Input path (`-` = stdin).
    pub input: String,
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Null-model selection.
    pub model: ModelSpec,
    /// Maximum rows to print for multi-result commands.
    pub limit: usize,
    /// Print scan statistics.
    pub stats: bool,
    /// Also print the family-wise (Šidák-corrected) p-value.
    pub family: bool,
    /// Raw `--query` specs for batch mode (parsed against each document).
    pub queries: Vec<String>,
}

/// Usage text.
pub const USAGE: &str = "\
sigstr — mine statistically significant substrings (chi-square)

USAGE:
    sigstr <mss|top|thresh|minlen> <file|-> [OPTIONS]

COMMANDS:
    mss                     most significant substring (Problem 1)
    top      --t N          top-t substrings (Problem 2)
    thresh   --alpha X      substrings with X² > alpha (Problem 3)
             --level P      …or derive alpha from significance level P
    minlen   --gamma G      MSS among substrings longer than G (Problem 4)
    maxlen   --w W          MSS among substrings of length <= W
    batch    --query Q...   one document per line, engine-served queries
                            (Q: mss | top:T | thresh:A | minlen:G | maxlen:W,
                             optionally range-restricted: mss@10..90)

OPTIONS:
    --algorithm A           ours (default) | trivial | arlm | agmm
    --uniform               use the uniform null model
    --probs p1,p2,...       explicit null model probabilities
    --limit N               max rows to print (default 20)
    --stats                 print scan statistics
    --family                also print the family-wise (Sidak) p-value
    --help                  show this help
";

/// Parse command-line arguments (excluding `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Err(USAGE.to_string());
    }
    let verb = args[0].as_str();
    if args.len() < 2 {
        return Err(format!("missing input file\n\n{USAGE}"));
    }
    let input = args[1].clone();
    let mut algorithm = Algorithm::Ours;
    let mut model = ModelSpec::Empirical;
    let mut limit = 20usize;
    let mut stats = false;
    let mut t: Option<usize> = None;
    let mut alpha: Option<f64> = None;
    let mut level: Option<f64> = None;
    let mut gamma: Option<usize> = None;
    let mut w: Option<usize> = None;
    let mut family = false;
    let mut queries: Vec<String> = Vec::new();

    let mut i = 2;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take_value = || -> Result<&str, String> {
            i += 1;
            args.get(i)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--algorithm" => algorithm = Algorithm::parse(take_value()?)?,
            "--uniform" => model = ModelSpec::Uniform,
            "--probs" => {
                let raw = take_value()?;
                let probs: Result<Vec<f64>, _> =
                    raw.split(',').map(|p| p.trim().parse::<f64>()).collect();
                model = ModelSpec::Explicit(probs.map_err(|e| format!("bad --probs value: {e}"))?);
            }
            "--limit" => {
                limit = take_value()?
                    .parse()
                    .map_err(|e| format!("bad --limit value: {e}"))?;
            }
            "--stats" => stats = true,
            "--t" => t = Some(take_value()?.parse().map_err(|e| format!("bad --t: {e}"))?),
            "--alpha" => {
                alpha = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --alpha: {e}"))?,
                );
            }
            "--level" => {
                level = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --level: {e}"))?,
                );
            }
            "--gamma" => {
                gamma = Some(
                    take_value()?
                        .parse()
                        .map_err(|e| format!("bad --gamma: {e}"))?,
                );
            }
            "--w" => {
                w = Some(take_value()?.parse().map_err(|e| format!("bad --w: {e}"))?);
            }
            "--family" => family = true,
            "--query" => queries.push(take_value()?.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
        i += 1;
    }

    let command = match verb {
        "mss" => Command::Mss,
        "top" => Command::Top {
            t: t.ok_or("top requires --t N")?,
        },
        "thresh" => {
            let alpha = match (alpha, level) {
                (Some(a), None) => a,
                (None, Some(_)) => f64::NAN, // resolved later, needs k
                (None, None) => return Err("thresh requires --alpha X or --level P".into()),
                (Some(_), Some(_)) => {
                    return Err("thresh takes either --alpha or --level, not both".into())
                }
            };
            // Stash the level inside alpha as NaN marker + separate field
            // would be cleaner; keep both by re-parsing in run(). We encode
            // level by negating it below (alpha must be >= 0).
            match level {
                Some(p) if !(0.0..1.0).contains(&p) => {
                    return Err(format!("--level must be in (0,1), got {p}"))
                }
                Some(p) => Command::Thresh { alpha: -p }, // marker: negative = level
                None => Command::Thresh { alpha },
            }
        }
        "minlen" => Command::MinLen {
            gamma: gamma.ok_or("minlen requires --gamma G")?,
        },
        "maxlen" => Command::MaxLen {
            w: w.ok_or("maxlen requires --w W")?,
        },
        "batch" => {
            if queries.is_empty() {
                return Err("batch requires at least one --query SPEC".into());
            }
            // Validate specs eagerly so malformed queries fail before any
            // document is indexed.
            for spec in &queries {
                parse_query_spec(spec)?;
            }
            Command::Batch
        }
        other => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    // `thresh` handled `command` above; silence unused for others.
    Ok(Invocation {
        command,
        input,
        algorithm,
        model,
        limit,
        stats,
        family,
        queries,
    })
}

/// Parse one batch query spec (`mss`, `top:3`, `thresh:4.5`, `minlen:5`,
/// `maxlen:8`, with an optional `@L..R` range suffix).
pub fn parse_query_spec(spec: &str) -> Result<sigstr_core::Query, String> {
    use sigstr_core::Query;
    let (body, range) = match spec.split_once('@') {
        Some((body, range_text)) => {
            let (l, r) = range_text
                .split_once("..")
                .ok_or_else(|| format!("bad range in `{spec}` (expected L..R)"))?;
            let l: usize = l
                .parse()
                .map_err(|e| format!("bad range start in `{spec}`: {e}"))?;
            let r: usize = r
                .parse()
                .map_err(|e| format!("bad range end in `{spec}`: {e}"))?;
            if l >= r {
                return Err(format!("empty range {l}..{r} in `{spec}` (need L < R)"));
            }
            (body, Some((l, r)))
        }
        None => (spec, None),
    };
    let query = match body.split_once(':') {
        None if body == "mss" => Query::mss(),
        Some(("top", t)) => Query::top_t(
            t.parse()
                .map_err(|e| format!("bad top count in `{spec}`: {e}"))?,
        ),
        Some(("thresh", alpha)) => Query::above_threshold(
            alpha
                .parse()
                .map_err(|e| format!("bad threshold in `{spec}`: {e}"))?,
        ),
        Some(("minlen", gamma)) => Query::mss_min_length(
            gamma
                .parse()
                .map_err(|e| format!("bad minlen in `{spec}`: {e}"))?,
        ),
        Some(("maxlen", w)) => Query::mss_max_length(
            w.parse()
                .map_err(|e| format!("bad maxlen in `{spec}`: {e}"))?,
        ),
        _ => {
            return Err(format!(
                "unknown query `{spec}` (expected mss|top:T|thresh:A|minlen:G|maxlen:W[@L..R])"
            ))
        }
    };
    Ok(match range {
        Some((l, r)) => query.in_range(l, r),
        None => query,
    })
}

/// Build the sequence from raw file bytes (whitespace stripped).
pub fn sequence_from_bytes(raw: &[u8]) -> Result<(Sequence, Vec<u8>), String> {
    let cleaned: Vec<u8> = raw
        .iter()
        .copied()
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    Sequence::from_text(&cleaned).map_err(|e| format!("cannot build sequence: {e}"))
}

/// Resolve the model spec against a sequence.
pub fn resolve_model(spec: &ModelSpec, seq: &Sequence) -> Result<Model, String> {
    match spec {
        ModelSpec::Empirical => Model::estimate(seq)
            .or_else(|_| Model::estimate_smoothed(seq, 0.5))
            .map_err(|e| format!("cannot estimate model: {e}")),
        ModelSpec::Uniform => Model::uniform(seq.k()).map_err(|e| e.to_string()),
        ModelSpec::Explicit(probs) => {
            if probs.len() != seq.k() {
                return Err(format!(
                    "--probs has {} entries but the input uses {} distinct symbols",
                    probs.len(),
                    seq.k()
                ));
            }
            Model::from_probs(probs.clone()).map_err(|e| e.to_string())
        }
    }
}

/// Format one result row: range, length, X², p-value.
pub fn format_row(s: &Scored, k: usize, alphabet: &[u8]) -> String {
    let _ = alphabet;
    let mut out = String::new();
    let _ = write!(
        out,
        "[{:>8}, {:>8})  len {:>8}  X² {:>12.4}  p {:.3e}",
        s.start,
        s.end,
        s.len(),
        s.chi_square,
        s.p_value(k)
    );
    out
}

/// Run batch mode: one engine per non-empty input line, all queries
/// answered over one persistent worker pool.
fn run_batch(invocation: &Invocation, raw: &[u8]) -> Result<String, String> {
    use sigstr_core::{Answer, Batch, Engine, Query};
    let queries: Vec<Query> = invocation
        .queries
        .iter()
        .map(|spec| parse_query_spec(spec))
        .collect::<Result<_, _>>()?;
    let mut engines: Vec<Engine> = Vec::new();
    let mut alphabets: Vec<Vec<u8>> = Vec::new();
    for (line_no, line) in raw.split(|&b| b == b'\n').enumerate() {
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let doc = engines.len();
        let context = |e: String| format!("doc {doc} (input line {}): {e}", line_no + 1);
        let (seq, alphabet) = sequence_from_bytes(line).map_err(context)?;
        let model = resolve_model(&invocation.model, &seq).map_err(context)?;
        let engine = Engine::new(&seq, model).map_err(|e| context(e.to_string()))?;
        engines.push(engine);
        alphabets.push(alphabet);
    }
    if engines.is_empty() {
        return Err("batch input has no non-empty documents".into());
    }
    let batch = Batch::new(0);
    let jobs: Vec<(usize, Query)> = (0..engines.len())
        .flat_map(|doc| queries.iter().map(move |&q| (doc, q)))
        .collect();
    let answers = batch.run(&engines, &jobs);

    let mut out = String::new();
    let mut slot = 0usize;
    for (doc, engine) in engines.iter().enumerate() {
        let k = engine.k();
        let _ = writeln!(
            out,
            "doc {doc}: n = {}, k = {k} (alphabet {:?})",
            engine.n(),
            alphabets[doc]
                .iter()
                .map(|&b| b as char)
                .collect::<String>()
        );
        for spec in &invocation.queries {
            match &answers[slot] {
                Ok(Answer::Best(r)) => {
                    let _ = writeln!(out, "  {spec}: {}", format_row(&r.best, k, &alphabets[doc]));
                    if invocation.stats {
                        let _ = writeln!(
                            out,
                            "    stats: examined {}, {} skip events, {} skipped",
                            r.stats.examined, r.stats.skips, r.stats.skipped
                        );
                    }
                }
                Ok(Answer::Top(r)) => {
                    let _ = writeln!(out, "  {spec}: {} substrings", r.items.len());
                    for item in r.items.iter().take(invocation.limit) {
                        let _ = writeln!(out, "    {}", format_row(item, k, &alphabets[doc]));
                    }
                }
                Ok(Answer::Threshold(r)) => {
                    let _ = writeln!(
                        out,
                        "  {spec}: {} substrings above threshold",
                        r.items.len()
                    );
                    for item in r.items.iter().take(invocation.limit) {
                        let _ = writeln!(out, "    {}", format_row(item, k, &alphabets[doc]));
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "  {spec}: error: {e}");
                }
            }
            slot += 1;
        }
    }
    Ok(out)
}

/// Run a parsed invocation against loaded input bytes; returns the output
/// text (testable without touching the filesystem).
pub fn run(invocation: &Invocation, raw: &[u8]) -> Result<String, String> {
    if invocation.command == Command::Batch {
        return run_batch(invocation, raw);
    }
    let (seq, alphabet) = sequence_from_bytes(raw)?;
    let model = resolve_model(&invocation.model, &seq)?;
    let k = seq.k();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "n = {}, k = {} (alphabet {:?})",
        seq.len(),
        k,
        alphabet.iter().map(|&b| b as char).collect::<String>()
    );
    let push_family = |out: &mut String, best: &Scored, n: usize, k: usize| {
        let a = sigstr_core::significance::assess(best, n, k);
        let _ = writeln!(
            out,
            "family-wise p = {:.3e} (Sidak over ~{} effective tests)",
            a.p_family, a.m_effective as u64
        );
    };
    let push_stats = |out: &mut String, stats: &sigstr_core::ScanStats| {
        let _ = writeln!(
            out,
            "stats: examined {} substrings, {} skip events, {} skipped",
            stats.examined, stats.skips, stats.skipped
        );
    };
    match invocation.command {
        Command::Mss => {
            let r = match invocation.algorithm {
                Algorithm::Ours => sigstr_core::find_mss(&seq, &model),
                Algorithm::Trivial => baseline::trivial::find_mss(&seq, &model),
                Algorithm::Arlm => baseline::arlm::find_mss(&seq, &model),
                Algorithm::Agmm => baseline::agmm::find_mss(&seq, &model),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{}", format_row(&r.best, k, &alphabet));
            if invocation.family {
                push_family(&mut out, &r.best, seq.len(), k);
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::Top { t } => {
            let r = match invocation.algorithm {
                Algorithm::Trivial => baseline::trivial::top_t(&seq, &model, t),
                _ => sigstr_core::top_t(&seq, &model, t),
            }
            .map_err(|e| e.to_string())?;
            for item in r.items.iter().take(invocation.limit) {
                let _ = writeln!(out, "{}", format_row(item, k, &alphabet));
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::Thresh { alpha } => {
            let alpha = if alpha < 0.0 {
                // Negative marker: derive from significance level.
                sigstr_stats::pearson::threshold_for_significance(-alpha, k)
            } else {
                alpha
            };
            let _ = writeln!(out, "alpha0 = {alpha:.4}");
            let r = match invocation.algorithm {
                Algorithm::Trivial => baseline::trivial::above_threshold(&seq, &model, alpha),
                _ => sigstr_core::above_threshold(&seq, &model, alpha),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{} substrings above threshold", r.items.len());
            for item in r.items.iter().take(invocation.limit) {
                let _ = writeln!(out, "{}", format_row(item, k, &alphabet));
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::MinLen { gamma } => {
            let r = match invocation.algorithm {
                Algorithm::Trivial => baseline::trivial::mss_min_length(&seq, &model, gamma),
                _ => sigstr_core::mss_min_length(&seq, &model, gamma),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{}", format_row(&r.best, k, &alphabet));
            if invocation.family {
                push_family(&mut out, &r.best, seq.len(), k);
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::MaxLen { w } => {
            let r = sigstr_core::mss_max_length(&seq, &model, w).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{}", format_row(&r.best, k, &alphabet));
            if invocation.family {
                push_family(&mut out, &r.best, seq.len(), k);
            }
            if invocation.stats {
                push_stats(&mut out, &r.stats);
            }
        }
        Command::Batch => unreachable!("batch mode is dispatched to run_batch above"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_mss_defaults() {
        let inv = parse_args(&argv(&["mss", "input.txt"])).unwrap();
        assert_eq!(inv.command, Command::Mss);
        assert_eq!(inv.input, "input.txt");
        assert_eq!(inv.algorithm, Algorithm::Ours);
        assert_eq!(inv.model, ModelSpec::Empirical);
        assert_eq!(inv.limit, 20);
        assert!(!inv.stats);
    }

    #[test]
    fn parse_full_flags() {
        let inv = parse_args(&argv(&[
            "top",
            "-",
            "--t",
            "7",
            "--algorithm",
            "trivial",
            "--probs",
            "0.25,0.75",
            "--limit",
            "3",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(inv.command, Command::Top { t: 7 });
        assert_eq!(inv.algorithm, Algorithm::Trivial);
        assert_eq!(inv.model, ModelSpec::Explicit(vec![0.25, 0.75]));
        assert_eq!(inv.limit, 3);
        assert!(inv.stats);
    }

    #[test]
    fn parse_thresh_variants() {
        let a = parse_args(&argv(&["thresh", "f", "--alpha", "12.5"])).unwrap();
        assert_eq!(a.command, Command::Thresh { alpha: 12.5 });
        let b = parse_args(&argv(&["thresh", "f", "--level", "0.01"])).unwrap();
        assert_eq!(b.command, Command::Thresh { alpha: -0.01 });
        assert!(parse_args(&argv(&["thresh", "f"])).is_err());
        assert!(parse_args(&argv(&["thresh", "f", "--alpha", "1", "--level", "0.1"])).is_err());
        assert!(parse_args(&argv(&["thresh", "f", "--level", "1.5"])).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["--help"])).is_err());
        assert!(parse_args(&argv(&["mss"])).is_err());
        assert!(parse_args(&argv(&["frobnicate", "f"])).is_err());
        assert!(parse_args(&argv(&["top", "f"])).is_err()); // missing --t
        assert!(parse_args(&argv(&["minlen", "f"])).is_err()); // missing --gamma
        assert!(parse_args(&argv(&["mss", "f", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["mss", "f", "--algorithm", "bogus"])).is_err());
        assert!(parse_args(&argv(&["mss", "f", "--limit"])).is_err());
    }

    #[test]
    fn sequence_from_bytes_strips_whitespace() {
        let (seq, alphabet) = sequence_from_bytes(b"ab ba\nab\n").unwrap();
        assert_eq!(seq.len(), 6);
        assert_eq!(alphabet, vec![b'a', b'b']);
        assert!(sequence_from_bytes(b"aaaa").is_err()); // single symbol
        assert!(sequence_from_bytes(b"  \n").is_err()); // empty
    }

    #[test]
    fn resolve_model_variants() {
        let (seq, _) = sequence_from_bytes(b"aabab").unwrap();
        let emp = resolve_model(&ModelSpec::Empirical, &seq).unwrap();
        assert!((emp.p(0) - 0.6).abs() < 1e-12);
        let uni = resolve_model(&ModelSpec::Uniform, &seq).unwrap();
        assert!((uni.p(0) - 0.5).abs() < 1e-12);
        let exp = resolve_model(&ModelSpec::Explicit(vec![0.3, 0.7]), &seq).unwrap();
        assert!((exp.p(1) - 0.7).abs() < 1e-12);
        assert!(resolve_model(&ModelSpec::Explicit(vec![0.2, 0.3, 0.5]), &seq).is_err());
    }

    #[test]
    fn run_mss_end_to_end() {
        let inv = parse_args(&argv(&["mss", "-", "--uniform", "--stats"])).unwrap();
        let out = run(&inv, b"abababbbbbbbbabab").unwrap();
        assert!(out.contains("n = 17"));
        assert!(out.contains("X²"));
        assert!(out.contains("stats:"));
    }

    #[test]
    fn run_top_and_thresh_and_minlen() {
        let data = b"abab bbbbbbbb abab";
        let top = parse_args(&argv(&["top", "-", "--t", "3", "--uniform"])).unwrap();
        let out = run(&top, data).unwrap();
        assert_eq!(out.lines().count(), 4); // header + 3 rows
        let thresh = parse_args(&argv(&["thresh", "-", "--alpha", "4", "--uniform"])).unwrap();
        let out = run(&thresh, data).unwrap();
        assert!(out.contains("substrings above threshold"));
        let minlen = parse_args(&argv(&["minlen", "-", "--gamma", "10", "--uniform"])).unwrap();
        let out = run(&minlen, data).unwrap();
        assert!(out.contains("len"));
    }

    #[test]
    fn parse_and_run_maxlen() {
        let inv = parse_args(&argv(&["maxlen", "-", "--w", "4", "--uniform"])).unwrap();
        assert_eq!(inv.command, Command::MaxLen { w: 4 });
        let out = run(&inv, b"ababbbbbbbabab").unwrap();
        assert!(out.contains("len"));
        assert!(parse_args(&argv(&["maxlen", "-"])).is_err()); // missing --w
    }

    #[test]
    fn parse_query_specs() {
        use sigstr_core::{Query, QueryKind};
        assert_eq!(parse_query_spec("mss").unwrap(), Query::mss());
        assert_eq!(parse_query_spec("top:7").unwrap(), Query::top_t(7));
        assert_eq!(
            parse_query_spec("thresh:4.5").unwrap(),
            Query::above_threshold(4.5)
        );
        assert_eq!(
            parse_query_spec("minlen:3").unwrap(),
            Query::mss_min_length(3)
        );
        assert_eq!(
            parse_query_spec("maxlen:9").unwrap(),
            Query::mss_max_length(9)
        );
        let ranged = parse_query_spec("mss@10..90").unwrap();
        assert_eq!(ranged.kind, QueryKind::Mss);
        assert_eq!(ranged.range, Some((10, 90)));
        assert!(parse_query_spec("bogus").is_err());
        assert!(parse_query_spec("top").is_err());
        assert!(parse_query_spec("top:x").is_err());
        assert!(parse_query_spec("mss@10..").is_err());
        assert!(parse_query_spec("mss@1-2").is_err());
        assert!(parse_query_spec("mss@90..10").is_err()); // empty range, eager
        assert!(parse_query_spec("mss@5..5").is_err());
    }

    #[test]
    fn parse_batch_command() {
        let inv = parse_args(&argv(&["batch", "-", "--query", "mss", "--query", "top:3"])).unwrap();
        assert_eq!(inv.command, Command::Batch);
        assert_eq!(inv.queries, vec!["mss".to_string(), "top:3".to_string()]);
        assert!(parse_args(&argv(&["batch", "-"])).is_err()); // no queries
        assert!(parse_args(&argv(&["batch", "-", "--query", "bogus"])).is_err());
    }

    #[test]
    fn run_batch_answers_per_document() {
        let inv = parse_args(&argv(&[
            "batch",
            "-",
            "--uniform",
            "--query",
            "mss",
            "--query",
            "top:2",
            "--query",
            "thresh:3.0",
            "--query",
            "mss@0..4",
        ]))
        .unwrap();
        let data = b"ababbbbbbab\nbababaaaaab\n\n";
        let out = run(&inv, data).unwrap();
        assert!(out.contains("doc 0: n = 11"), "{out}");
        assert!(out.contains("doc 1: n = 11"), "{out}");
        assert!(out.contains("  mss: "), "{out}");
        assert!(out.contains("  top:2: 2 substrings"), "{out}");
        assert!(out.contains("substrings above threshold"), "{out}");
        assert!(out.contains("  mss@0..4: "), "{out}");
        // Batch answers equal the one-shot CLI on the same line.
        let single = parse_args(&argv(&["mss", "-", "--uniform"])).unwrap();
        let single_out = run(&single, b"ababbbbbbab").unwrap();
        let batch_row = out
            .lines()
            .find(|l| l.starts_with("  mss: "))
            .unwrap()
            .trim_start_matches("  mss: ");
        assert!(
            single_out.contains(batch_row),
            "{single_out} vs {batch_row}"
        );
    }

    #[test]
    fn run_batch_reports_per_query_errors_in_place() {
        // minlen:100 is impossible for an 8-symbol document: the other
        // queries must still answer.
        let inv = parse_args(&argv(&[
            "batch",
            "-",
            "--uniform",
            "--query",
            "minlen:100",
            "--query",
            "mss",
        ]))
        .unwrap();
        let out = run(&inv, b"abbbbbab").unwrap();
        assert!(out.contains("minlen:100: error:"), "{out}");
        assert!(out.contains("  mss: "), "{out}");
    }

    #[test]
    fn run_batch_rejects_empty_input() {
        let inv = parse_args(&argv(&["batch", "-", "--query", "mss"])).unwrap();
        assert!(run(&inv, b"  \n \n").is_err());
        // A malformed document names its line.
        let err = run(&inv, b"abab\naaaa\n").unwrap_err();
        assert!(err.contains("doc 1 (input line 2)"), "{err}");
    }

    #[test]
    fn family_flag_prints_corrected_pvalue() {
        let inv = parse_args(&argv(&["mss", "-", "--uniform", "--family"])).unwrap();
        assert!(inv.family);
        let out = run(&inv, b"abababbbbbbbbbbabab").unwrap();
        assert!(out.contains("family-wise p ="), "{out}");
    }

    #[test]
    fn run_level_threshold_derives_alpha() {
        let inv = parse_args(&argv(&["thresh", "-", "--level", "0.001", "--uniform"])).unwrap();
        let out = run(&inv, b"abababbbbbbbbbbbbbbbabab").unwrap();
        assert!(out.contains("alpha0 = 10.82"), "{out}");
    }

    #[test]
    fn run_all_algorithms_agree_on_obvious_input() {
        let data = b"abababab bbbbbbbbbbbb abababab";
        for algo in ["ours", "trivial", "arlm"] {
            let inv = parse_args(&argv(&["mss", "-", "--algorithm", algo, "--uniform"])).unwrap();
            let out = run(&inv, data).unwrap();
            assert!(out.contains("X²"), "algorithm {algo}");
        }
    }
}
