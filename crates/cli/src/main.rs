//! `sigstr` — command-line significant-substring mining.

use std::io::Read;
use std::process::ExitCode;

use sigstr_cli::{parse_args, run};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match parse_args(&args) {
        Ok(inv) => inv,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    // Corpus/info commands manage their own files (their input is a
    // directory or a large snapshot whose header suffices).
    let raw = if !invocation.reads_raw_input() {
        Vec::new()
    } else if invocation.input == "-" {
        let mut buf = Vec::new();
        if let Err(e) = std::io::stdin().read_to_end(&mut buf) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read(&invocation.input) {
            Ok(buf) => buf,
            Err(e) => {
                eprintln!("cannot read {}: {e}", invocation.input);
                return ExitCode::FAILURE;
            }
        }
    };
    match run(&invocation, &raw) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
