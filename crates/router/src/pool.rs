//! Keep-alive connection pool, one per shard.
//!
//! A `get`/`put` pair brackets every shard call: `get` pops the most
//! recently parked connection (LIFO — the warmest socket, least likely
//! to have been idled out by the shard's keep-alive timer) or dials a
//! fresh one; `put` parks it again after a successful exchange. Failed
//! connections are simply dropped, never parked — the pool only ever
//! holds sockets whose last exchange completed cleanly, and
//! [`ClientConn`]'s transparent stale-reconnect covers the window where
//! the shard closed a parked socket while it idled here.

use std::io;
use std::sync::Mutex;

use sigstr_server::client::{ClientConfig, ClientConn};

/// A LIFO pool of keep-alive connections to one shard.
#[derive(Debug)]
pub struct Pool {
    addr: String,
    config: ClientConfig,
    idle: Mutex<Vec<ClientConn>>,
    max_idle: usize,
}

impl Pool {
    /// An empty pool dialing `addr`, parking at most `max_idle` sockets.
    pub fn new(addr: String, config: ClientConfig, max_idle: usize) -> Pool {
        Pool {
            addr,
            config,
            idle: Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// The shard address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Pop an idle connection or dial a fresh one.
    pub fn get(&self) -> io::Result<ClientConn> {
        if let Some(conn) = self.idle.lock().unwrap().pop() {
            return Ok(conn);
        }
        ClientConn::connect_with(&self.addr, self.config)
    }

    /// Park a connection after a clean exchange.
    pub fn put(&self, conn: ClientConn) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// Drop every parked connection (e.g. after the shard goes down, so
    /// recovery starts from fresh sockets).
    pub fn drain(&self) {
        self.idle.lock().unwrap().clear();
    }

    /// Number of parked connections (test observability).
    #[cfg(test)]
    pub fn idle_len(&self) -> usize {
        self.idle.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;
    use std::time::Duration;

    fn config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        }
    }

    #[test]
    fn reuses_parked_connections_and_caps_the_idle_list() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut accepted = Vec::new();
            for _ in 0..3 {
                let (stream, _) = listener.accept().unwrap();
                accepted.push(stream);
            }
            accepted
        });

        let pool = Pool::new(addr.to_string(), config(), 2);
        let a = pool.get().unwrap();
        let b = pool.get().unwrap();
        let c = pool.get().unwrap();
        let _streams = server.join().unwrap();

        let b_peer = b.peer_addr();
        pool.put(a);
        pool.put(b);
        pool.put(c); // over the cap of 2: dropped
        assert_eq!(pool.idle_len(), 2);

        // LIFO: the most recently parked surviving connection comes back first.
        let reused = pool.get().unwrap();
        assert_eq!(reused.peer_addr(), b_peer);
        assert_eq!(pool.idle_len(), 1);

        pool.drain();
        assert_eq!(pool.idle_len(), 0);
    }

    #[test]
    fn get_dials_when_the_pool_is_empty() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Type: text/plain\r\n\r\nhi",
                )
                .unwrap();
        });
        let pool = Pool::new(addr.to_string(), config(), 4);
        let mut conn = pool.get().unwrap();
        let response = conn.request("GET", "/x", None).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "hi");
        server.join().unwrap();
    }
}
