//! `sigstr-router` — a fault-tolerant scatter-gather router over
//! `sigstr-server` shards.
//!
//! PR 5 made one corpus servable; this crate makes *many* servable as
//! one. Documents are partitioned across shard servers by consistent
//! hashing of the document name ([`hash::Ring`]), and the router
//! presents the same HTTP surface as a single server — `/v1/query`,
//! `/v1/batch`, `/v1/merged/top`, `/v1/merged/threshold` — fanning
//! requests out over pooled keep-alive connections and merging shard
//! answers with the exact deterministic merge the corpus layer uses, so
//! a routed answer is **bit-identical** to the answer one big corpus
//! would have produced.
//!
//! # Robustness model
//!
//! Every shard carries a [`health::Health`] state machine driven by a
//! background `/healthz` prober (exponential backoff while down,
//! half-open recovery). Data calls get a per-request deadline, a
//! bounded retry budget on transport failures, and optional *hedging*:
//! when an attempt outlives a latency-percentile trigger, a duplicate
//! is raced against it and the first response wins. When a shard stays
//! unreachable past the budget the router degrades instead of failing:
//! fan-out routes answer `200` with `"degraded": true` and the list of
//! unreachable shards, single-document routes answer `503` with
//! `Retry-After`. Nothing ever blocks past its deadline.
//!
//! # Global document order
//!
//! The merged routes reconstruct the *global* document index — the
//! `doc` field of every hit — as the **lexicographic rank of the
//! document name** across all shards. A single-corpus reference must
//! therefore ingest documents in sorted-name order to compare
//! bit-for-bit (the integration tests and CI do exactly that).
//!
//! [`fault::FaultProxy`] is a deterministic fault-injection TCP proxy
//! (delays, mid-response cuts, black holes) used by the integration
//! tests and the `router_fanout` benchmark to exercise all of the
//! above on real sockets.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod fault;
pub mod hash;
pub mod health;
pub mod metrics;
pub mod pool;
pub mod rebalance;

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use sigstr_core::Scored;
use sigstr_corpus::{merge_ranked, DocHit};
use sigstr_obs::{self as obs, TraceHandle};
use sigstr_server::client::{ClientConfig, ClientConn, HttpResponse};
use sigstr_server::http::{Request, Response};
use sigstr_server::json::Json;
use sigstr_server::service::{json_response, text_response, Handler, Service, ServiceCore};
use sigstr_server::{wire, ServeSummary, ServiceConfig, ServiceHandle};

use hash::Ring;
use health::{Health, HealthPolicy, State};
use metrics::{RouterMetrics, ShardCounters};
use pool::Pool;

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// When a request attempt is duplicated ("hedged") against a slow
/// shard.
#[derive(Debug, Clone, Copy)]
pub enum HedgePolicy {
    /// Never hedge.
    Disabled,
    /// Hedge when the first attempt outlives this fixed delay.
    Fixed(Duration),
    /// Hedge when the first attempt outlives the shard's observed p95
    /// latency, clamped to `[min, max]`. Until enough samples exist the
    /// trigger sits at `max` (hedge conservatively before there is
    /// evidence the shard is usually fast).
    P95 {
        /// Lower clamp on the trigger.
        min: Duration,
        /// Upper clamp on the trigger (and the cold-start trigger).
        max: Duration,
    },
}

/// Default virtual nodes per shard on the consistent-hash ring.
/// `sigstr route` and `sigstr rebalance` must agree on this (and on
/// the shard-list order) or they will disagree about placement.
pub const DEFAULT_VNODES: usize = 64;

/// Full router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listener/worker-pool settings for the router's own HTTP service.
    pub service: ServiceConfig,
    /// Shard addresses, e.g. `["127.0.0.1:9001", "127.0.0.1:9002"]`.
    /// **Order is part of the placement contract** — the consistent
    /// hash ring names shards by position in this list.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// End-to-end budget for one routed request (including retries and
    /// hedges). No route blocks past this.
    pub deadline: Duration,
    /// Extra attempts after a transport failure (connect/read errors on
    /// these read-only routes are safe to retry).
    pub retries: u32,
    /// Hedging policy for slow attempts.
    pub hedge: HedgePolicy,
    /// Probe cadence for shards that are not down.
    pub probe_interval: Duration,
    /// Connect/read budget for one `/healthz` probe.
    pub probe_timeout: Duration,
    /// Consecutive data failures that take a healthy shard down.
    pub failure_threshold: u32,
    /// First probe backoff after a shard goes down.
    pub backoff_base: Duration,
    /// Probe backoff ceiling.
    pub backoff_max: Duration,
    /// Timeouts for data-path shard connections.
    pub client: ClientConfig,
    /// Idle keep-alive connections parked per shard.
    pub max_idle_per_shard: usize,
}

impl RouterConfig {
    /// Defaults tuned for LAN shards: 2 s deadline, 2 retries, p95
    /// hedging clamped to `[1 ms, 25 ms]`, 200 ms probes.
    pub fn new(shards: Vec<String>) -> RouterConfig {
        RouterConfig {
            service: ServiceConfig::default(),
            shards,
            vnodes: DEFAULT_VNODES,
            deadline: Duration::from_secs(2),
            retries: 2,
            hedge: HedgePolicy::P95 {
                min: Duration::from_millis(1),
                max: Duration::from_millis(25),
            },
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_secs(1),
            failure_threshold: 3,
            backoff_base: Duration::from_millis(250),
            backoff_max: Duration::from_secs(4),
            client: ClientConfig::default(),
            max_idle_per_shard: 4,
        }
    }

    fn health_policy(&self) -> HealthPolicy {
        HealthPolicy {
            probe_interval: self.probe_interval,
            failure_threshold: self.failure_threshold,
            backoff_base: self.backoff_base,
            backoff_max: self.backoff_max,
        }
    }

    /// Probes use their own, tighter timeouts so a dead host costs one
    /// `probe_timeout`, not a full data-path `connect_timeout`.
    fn probe_client(&self) -> ClientConfig {
        ClientConfig {
            connect_timeout: self.probe_timeout,
            read_timeout: self.probe_timeout,
            write_timeout: self.probe_timeout,
        }
    }
}

// ---------------------------------------------------------------------------
// Shard runtime state.
// ---------------------------------------------------------------------------

/// Ring buffer of winning-attempt latencies used by the p95 hedge
/// trigger. Only *winners* are recorded: recording a hedged loser's
/// slow latency would drag the p95 up and progressively disable the
/// very hedging that routed around it.
#[derive(Debug, Default)]
struct LatencyWindow {
    samples: Vec<u64>,
    next: usize,
}

const LATENCY_WINDOW: usize = 64;

impl LatencyWindow {
    fn record(&mut self, us: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }

    fn p95(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)])
    }
}

#[derive(Debug)]
struct ShardRuntime {
    index: usize,
    addr: String,
    pool: Pool,
    health: Health,
    counters: ShardCounters,
    latency: Mutex<LatencyWindow>,
    /// Last manifest generation seen by a probe; a change marks the
    /// document directory stale.
    generation: AtomicU64,
}

/// The routing directory: which document lives where, and the global
/// (lexicographic) document order. Entries for unreachable shards are
/// retained from the last good fetch, so a query for a document on a
/// down shard answers `503` ("its shard is down") instead of being
/// misrouted to a shard that never held it.
#[derive(Debug, Default, Clone)]
struct Directory {
    /// `(name, shard index, manifest entry)` sorted by name.
    entries: Vec<(String, usize, Json)>,
    /// name → lexicographic rank (the global `doc` index).
    global: HashMap<String, usize>,
    /// name → shard index.
    shard_of: HashMap<String, usize>,
}

impl Directory {
    fn build(mut entries: Vec<(String, usize, Json)>) -> Directory {
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        entries.dedup_by(|a, b| a.0 == b.0);
        let mut global = HashMap::with_capacity(entries.len());
        let mut shard_of = HashMap::with_capacity(entries.len());
        for (rank, (name, shard, _)) in entries.iter().enumerate() {
            global.insert(name.clone(), rank);
            shard_of.insert(name.clone(), *shard);
        }
        Directory {
            entries,
            global,
            shard_of,
        }
    }
}

struct RouterShared {
    config: RouterConfig,
    shards: Vec<Arc<ShardRuntime>>,
    ring: Ring,
    metrics: RouterMetrics,
    directory: RwLock<Directory>,
    /// Serializes [`refresh_directory`]: without it, a refresh that
    /// fetched membership *before* a rebalance step could publish its
    /// stale view *after* a fresher refresh, regressing the owner map
    /// a `410 Gone` re-route just depended on.
    directory_refresh: Mutex<()>,
    directory_stale: AtomicBool,
    stop: AtomicBool,
    checker: Mutex<Option<thread::JoinHandle<()>>>,
}

// ---------------------------------------------------------------------------
// Server shell.
// ---------------------------------------------------------------------------

/// The router's [`Handler`]; normally constructed through
/// [`RouterServer::bind`].
pub struct RouterHandler {
    shared: Arc<RouterShared>,
}

impl Handler for RouterHandler {
    fn handle(&self, request: &Request, core: &ServiceCore) -> Response {
        route(&self.shared, request, core)
    }

    fn on_shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.shared.checker.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

/// A bound scatter-gather router: the health checker is already
/// running; call [`RouterServer::run`] to serve.
pub struct RouterServer {
    inner: Service<RouterHandler>,
}

impl RouterServer {
    /// Bind the listener, probe every shard once (synchronously, so
    /// routing works from the first request), build the document
    /// directory and start the background health checker.
    pub fn bind(config: RouterConfig) -> io::Result<RouterServer> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one shard address",
            ));
        }
        let policy = config.health_policy();
        let now = Instant::now();
        let shards: Vec<Arc<ShardRuntime>> = config
            .shards
            .iter()
            .enumerate()
            .map(|(index, addr)| {
                Arc::new(ShardRuntime {
                    index,
                    addr: addr.clone(),
                    pool: Pool::new(addr.clone(), config.client, config.max_idle_per_shard),
                    // Jitter seed: distinct per shard address, so a
                    // correlated fleet outage does not probe in lockstep.
                    health: Health::new(policy, now, hash::fnv1a(addr.as_bytes())),
                    counters: ShardCounters::default(),
                    latency: Mutex::new(LatencyWindow::default()),
                    generation: AtomicU64::new(0),
                })
            })
            .collect();
        let ring = Ring::new(config.shards.len(), config.vnodes);
        let service_config = config.service.clone();
        let shared = Arc::new(RouterShared {
            config,
            shards,
            ring,
            metrics: RouterMetrics::default(),
            directory: RwLock::new(Directory::default()),
            directory_refresh: Mutex::new(()),
            directory_stale: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            checker: Mutex::new(None),
        });
        let inner = Service::bind(
            RouterHandler {
                shared: Arc::clone(&shared),
            },
            service_config,
        )?;
        for shard in &shared.shards {
            probe_shard(&shared, shard);
        }
        refresh_directory(&shared);
        shared.directory_stale.store(false, Ordering::SeqCst);
        let checker_shared = Arc::clone(&shared);
        *shared.checker.lock().unwrap() = Some(thread::spawn(move || checker_loop(checker_shared)));
        Ok(RouterServer { inner })
    }

    /// The bound listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// A shutdown handle, safe to use from signal handlers/threads.
    pub fn handle(&self) -> ServiceHandle {
        self.inner.handle()
    }

    /// Serve until shutdown; drains in-flight requests and stops the
    /// health checker.
    pub fn run(self) -> io::Result<ServeSummary> {
        self.inner.run()
    }
}

// ---------------------------------------------------------------------------
// Health checking.
// ---------------------------------------------------------------------------

/// Checker wake-up cadence; also bounds how quickly `on_shutdown`
/// observes the stop flag.
const CHECKER_TICK: Duration = Duration::from_millis(25);

fn checker_loop(shared: Arc<RouterShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        for shard in &shared.shards {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            if shard.health.probe_due(now) {
                probe_shard(&shared, shard);
            }
        }
        if shared.directory_stale.swap(false, Ordering::SeqCst) {
            refresh_directory(&shared);
        }
        thread::sleep(CHECKER_TICK);
    }
}

/// Probe one shard's `/healthz` and feed the result into its state
/// machine. A draining shard (HTTP 503) counts as a failure, so the
/// router stops routing to shards that announced shutdown.
fn probe_shard(shared: &RouterShared, shard: &Arc<ShardRuntime>) {
    shard.counters.probes.fetch_add(1, Ordering::Relaxed);
    match probe_healthz(shard, &shared.config) {
        Ok(generation) => {
            let before = shard.health.state();
            shard.health.record_probe_success(Instant::now());
            let previous = shard.generation.swap(generation, Ordering::Relaxed);
            if previous != generation || before == State::Down {
                shared.directory_stale.store(true, Ordering::SeqCst);
            }
        }
        Err(_) => {
            shard
                .counters
                .probe_failures
                .fetch_add(1, Ordering::Relaxed);
            let was_routable = shard.health.routable();
            shard.health.record_probe_failure(Instant::now());
            if was_routable {
                // Parked keep-alive sockets to a failed shard are dead
                // weight; recovery starts from fresh connections.
                shard.pool.drain();
            }
        }
    }
}

/// One probe round-trip on a fresh connection. Success means HTTP 200
/// with `"status": "ok"`; the shard's manifest generation is returned
/// so directory refreshes can be driven by actual membership changes.
fn probe_healthz(shard: &ShardRuntime, config: &RouterConfig) -> io::Result<u64> {
    let mut conn = ClientConn::connect_with(&shard.addr, config.probe_client())?;
    let response = conn.request("GET", "/healthz", None)?;
    let not_ready = || io::Error::other("shard not ready");
    if response.status != 200 {
        return Err(not_ready());
    }
    let text = std::str::from_utf8(&response.body).map_err(|_| not_ready())?;
    let body = Json::decode(text.trim()).map_err(|_| not_ready())?;
    if body.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(not_ready());
    }
    Ok(body.get("generation").and_then(Json::as_u64).unwrap_or(0))
}

/// Rebuild the document directory from every routable shard's
/// `/v1/documents`, keeping the previous entries of shards that could
/// not be asked (see [`Directory`]). Each successful fetch also records
/// the placement generation the membership list reflects, so the next
/// health probe reporting the same generation does not re-mark the
/// directory stale.
fn refresh_directory(shared: &RouterShared) {
    // One refresh at a time: the last directory written must be the
    // last membership fetched, or a slow stale fetch would undo a
    // fresher view (and strand a 410 re-route on the old owner).
    let _serialized = shared.directory_refresh.lock().unwrap();
    shared
        .metrics
        .directory_refreshes
        .fetch_add(1, Ordering::Relaxed);
    let previous = shared.directory.read().unwrap().entries.clone();
    let mut entries: Vec<(String, usize, Json)> = Vec::new();
    for shard in &shared.shards {
        let fetched = if shard.health.routable() {
            fetch_documents(shard, &shared.config).ok()
        } else {
            None
        };
        match fetched {
            Some((generation, list)) => {
                shard.generation.store(generation, Ordering::Relaxed);
                entries.extend(list.into_iter().map(|(name, doc)| (name, shard.index, doc)));
            }
            None => {
                entries.extend(
                    previous
                        .iter()
                        .filter(|(_, s, _)| *s == shard.index)
                        .cloned(),
                );
            }
        }
    }
    *shared.directory.write().unwrap() = Directory::build(entries);
}

/// Fetch one shard's membership: `(placement generation, documents)`.
/// A pre-elasticity shard without a `generation` field reads as 0.
fn fetch_documents(
    shard: &ShardRuntime,
    config: &RouterConfig,
) -> io::Result<(u64, Vec<(String, Json)>)> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut conn = ClientConn::connect_with(&shard.addr, config.probe_client())?;
    let response = conn.request("GET", "/v1/documents", None)?;
    if response.status != 200 {
        return Err(bad("documents route failed"));
    }
    let text = std::str::from_utf8(&response.body).map_err(|_| bad("body not UTF-8"))?;
    let body = Json::decode(text.trim()).map_err(|_| bad("body not JSON"))?;
    let generation = body.get("generation").and_then(Json::as_u64).unwrap_or(0);
    let docs = body
        .get("documents")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing `documents`"))?;
    let list = docs
        .iter()
        .map(|doc| {
            doc.get("name")
                .and_then(Json::as_str)
                .map(|name| (name.to_string(), doc.clone()))
                .ok_or_else(|| bad("document without a name"))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok((generation, list))
}

// ---------------------------------------------------------------------------
// Shard calls: deadline, retries, hedging.
// ---------------------------------------------------------------------------

/// Why a shard call failed.
enum CallError {
    /// The request's end-to-end deadline passed. Not retried, and not
    /// held against the shard's health: in-flight attempts may still be
    /// about to land, and probes judge slowness separately.
    Deadline,
    /// A transport failure (connect/read/write). Retried within the
    /// budget and recorded against the shard's health.
    Transport(io::Error),
}

impl CallError {
    fn into_io(self) -> io::Error {
        match self {
            CallError::Deadline => io::Error::new(io::ErrorKind::TimedOut, "deadline exceeded"),
            CallError::Transport(e) => e,
        }
    }
}

/// Issue one logical request to a shard with the full robustness
/// stack: routability gate, per-attempt hedging, bounded retries, hard
/// deadline. An `Ok` carries whatever HTTP response the shard produced
/// (including 4xx/5xx — those are *its* answers, not transport
/// failures).
fn shard_call(
    shared: &RouterShared,
    shard: &Arc<ShardRuntime>,
    method: &str,
    target: &str,
    body: Option<&str>,
    deadline: Instant,
) -> io::Result<HttpResponse> {
    if !shard.health.routable() {
        return Err(io::Error::new(
            io::ErrorKind::NotConnected,
            format!("shard {} is down", shard.addr),
        ));
    }
    let mut attempt = 0;
    loop {
        if Instant::now() >= deadline {
            return Err(CallError::Deadline.into_io());
        }
        match hedged_attempt(shared, shard, method, target, body, deadline) {
            Ok(response) => {
                shard.health.record_data_success();
                return Ok(response);
            }
            Err(CallError::Deadline) => return Err(CallError::Deadline.into_io()),
            Err(CallError::Transport(e)) => {
                let state = shard.health.record_data_failure(Instant::now());
                if state == State::Down {
                    shard.pool.drain();
                    return Err(e);
                }
                if attempt >= shared.config.retries || Instant::now() >= deadline {
                    return Err(e);
                }
                attempt += 1;
                shared.metrics.retries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One attempt, optionally raced against a hedge duplicate: if the
/// primary outlives the hedge trigger, a second identical request is
/// launched and the first response to arrive wins. Attempt threads are
/// detached (bounded by their read timeouts); the coordinator never
/// waits past `deadline`.
/// Per-attempt span bookkeeping for the hedging coordinator. Attempt
/// threads are detached and may outlive the trace, so spans are
/// recorded *here*, on the worker thread: resolved attempts as they
/// report in, still-outstanding ones as `abandoned` at resolution — a
/// hedged call always shows every attempt it launched.
struct AttemptLog {
    trace: Option<TraceHandle>,
    shard: String,
    /// `(launched, is_hedge, resolved)` — at most one of each kind.
    launches: Vec<(Instant, bool, bool)>,
}

impl AttemptLog {
    fn new(shard: &ShardRuntime) -> AttemptLog {
        AttemptLog {
            trace: obs::current(),
            shard: shard.addr.clone(),
            launches: Vec::with_capacity(2),
        }
    }

    fn launched(&mut self, is_hedge: bool) {
        self.launches.push((Instant::now(), is_hedge, false));
    }

    fn record(&self, started: Instant, is_hedge: bool, outcome: &str, win: bool) {
        let Some(trace) = &self.trace else { return };
        let mut attrs = vec![
            ("shard", self.shard.clone()),
            (
                "kind",
                if is_hedge { "hedge" } else { "primary" }.to_string(),
            ),
            ("outcome", outcome.to_string()),
        ];
        if win {
            attrs.push(("win", "true".to_string()));
        }
        trace.record("attempt", started, Instant::now(), attrs);
    }

    /// The named attempt reported in (`ok` or `error`).
    fn resolved(&mut self, is_hedge: bool, outcome: &str, win: bool) {
        if let Some(entry) = self
            .launches
            .iter_mut()
            .find(|(_, hedge, resolved)| *hedge == is_hedge && !resolved)
        {
            entry.2 = true;
            let started = entry.0;
            self.record(started, is_hedge, outcome, win);
        }
    }

    /// The coordinator is returning: whatever is still in flight was
    /// abandoned (a losing hedge, or both attempts on a deadline).
    fn finish(&mut self) {
        for i in 0..self.launches.len() {
            let (started, is_hedge, resolved) = self.launches[i];
            if !resolved {
                self.launches[i].2 = true;
                self.record(started, is_hedge, "abandoned", false);
            }
        }
    }
}

fn hedged_attempt(
    shared: &RouterShared,
    shard: &Arc<ShardRuntime>,
    method: &str,
    target: &str,
    body: Option<&str>,
    deadline: Instant,
) -> Result<HttpResponse, CallError> {
    let trigger = hedge_trigger(shared, shard);
    let trace_hex = obs::current_id_hex();
    let mut log = AttemptLog::new(shard);
    let (tx, rx) = mpsc::channel();
    log.launched(false);
    spawn_attempt(
        shard,
        shared.config.client,
        method,
        target,
        body,
        deadline,
        false,
        trace_hex.clone(),
        tx.clone(),
    );
    let started = Instant::now();
    let mut outstanding: u32 = 1;
    let mut hedged = false;
    let result = loop {
        let now = Instant::now();
        if now >= deadline {
            break Err(CallError::Deadline);
        }
        let until_deadline = deadline - now;
        let wait = match (hedged, trigger) {
            (false, Some(t)) => (started + t)
                .saturating_duration_since(now)
                .min(until_deadline),
            _ => until_deadline,
        };
        match rx.recv_timeout(wait) {
            Ok((Ok((response, latency)), is_hedge)) => {
                let us = duration_us(latency);
                shard.counters.latency.observe_us(us);
                shard.latency.lock().unwrap().record(us);
                if is_hedge {
                    shared.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                }
                log.resolved(is_hedge, "ok", true);
                break Ok(response);
            }
            Ok((Err(e), is_hedge)) => {
                log.resolved(is_hedge, "error", false);
                outstanding -= 1;
                if outstanding == 0 {
                    break Err(CallError::Transport(e));
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    break Err(CallError::Deadline);
                }
                if !hedged {
                    hedged = true;
                    outstanding += 1;
                    shared.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                    log.launched(true);
                    spawn_attempt(
                        shard,
                        shared.config.client,
                        method,
                        target,
                        body,
                        deadline,
                        true,
                        trace_hex.clone(),
                        tx.clone(),
                    );
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(CallError::Transport(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "all attempts vanished",
                )));
            }
        }
    };
    log.finish();
    result
}

fn hedge_trigger(shared: &RouterShared, shard: &ShardRuntime) -> Option<Duration> {
    match shared.config.hedge {
        HedgePolicy::Disabled => None,
        HedgePolicy::Fixed(trigger) => Some(trigger),
        HedgePolicy::P95 { min, max } => {
            let p95 = shard
                .latency
                .lock()
                .unwrap()
                .p95()
                .map(Duration::from_micros);
            Some(p95.unwrap_or(max).clamp(min, max))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_attempt(
    shard: &Arc<ShardRuntime>,
    client: ClientConfig,
    method: &str,
    target: &str,
    body: Option<&str>,
    deadline: Instant,
    is_hedge: bool,
    trace_hex: Option<String>,
    tx: mpsc::Sender<(io::Result<(HttpResponse, Duration)>, bool)>,
) {
    let shard = Arc::clone(shard);
    let method = method.to_string();
    let target = target.to_string();
    let body = body.map(str::to_string);
    thread::spawn(move || {
        shard.counters.calls.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let result = (|| {
            let mut conn = shard.pool.get()?;
            // Bound the read by what is left of the deadline (floored
            // so the OS accepts the timeout) — a detached attempt may
            // outlive the coordinator, but only by this much.
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(10));
            conn.set_read_timeout(remaining.min(client.read_timeout))?;
            // The attempt carries the edge-minted trace ID so the shard
            // logs its spans under the same trace.
            let headers: Vec<(&str, &str)> = trace_hex
                .as_deref()
                .map(|hex| (obs::TRACE_HEADER, hex))
                .into_iter()
                .collect();
            let response = conn.request_with(&method, &target, body.as_deref(), &headers)?;
            conn.set_read_timeout(client.read_timeout)?;
            // A contended shard answers `Connection: close` (it is about
            // to serve whoever waits in its admission queue); parking
            // that socket would hand the next attempt a dead one.
            let closing = response
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
            if !closing {
                shard.pool.put(conn);
            }
            Ok((response, started.elapsed()))
        })();
        if result.is_err() {
            shard.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let _ = tx.send((result, is_hedge));
    });
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------------

fn route(shared: &Arc<RouterShared>, request: &Request, core: &ServiceCore) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(shared, core),
        ("GET", "/metrics") => handle_metrics(shared, core),
        ("GET", "/debug/traces") => handle_traces(shared, core, request),
        ("GET", "/v1/documents") => handle_documents(shared),
        ("POST", "/v1/query") => handle_query(shared, request),
        ("POST", "/v1/batch") => handle_batch(shared, request),
        ("GET", "/v1/merged/top") => handle_merged_top(shared, request),
        ("GET", "/v1/merged/threshold") => handle_merged_threshold(shared, request),
        ("POST", path) if append_route_doc(path).is_some() => {
            handle_append(shared, request, append_route_doc(path).expect("guarded"))
        }
        ("POST", "/v1/watch") => handle_watch_register(shared, request),
        ("DELETE", "/v1/watch") => handle_watch_forward_by_param(shared, request, "DELETE"),
        ("GET", "/v1/watch") => handle_watch_poll(shared, request),
        ("GET", "/v1/live") => handle_live(shared),
        (
            _,
            "/healthz"
            | "/metrics"
            | "/v1/documents"
            | "/v1/merged/top"
            | "/v1/merged/threshold"
            | "/v1/live",
        ) => json_response(405, wire::error_json("method not allowed")).with_header("Allow", "GET"),
        (_, "/v1/query" | "/v1/batch") => {
            json_response(405, wire::error_json("method not allowed")).with_header("Allow", "POST")
        }
        (_, "/v1/watch") => json_response(405, wire::error_json("method not allowed"))
            .with_header("Allow", "GET, POST, DELETE"),
        (_, path) if append_route_doc(path).is_some() => {
            json_response(405, wire::error_json("method not allowed")).with_header("Allow", "POST")
        }
        _ => json_response(
            404,
            wire::error_json(&format!("no route for {}", request.path)),
        ),
    }
}

/// Router readiness: alive as long as the process runs; `"ok"` even
/// with every shard down (degradation is reported per-request — a
/// router with zero healthy shards still answers, structurally). The
/// healthy-shard count lets a load balancer weigh routers.
fn handle_healthz(shared: &RouterShared, core: &ServiceCore) -> Response {
    let draining = core.is_shutting_down();
    let healthy = shared.shards.iter().filter(|s| s.health.routable()).count();
    let documents = shared.directory.read().unwrap().entries.len();
    let body = Json::Obj(vec![
        (
            "status".into(),
            Json::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        ("shards".into(), Json::Int(shared.shards.len() as u64)),
        ("healthy".into(), Json::Int(healthy as u64)),
        ("documents".into(), Json::Int(documents as u64)),
    ]);
    if draining {
        json_response(503, body).with_header("Retry-After", "1")
    } else {
        json_response(200, body)
    }
}

fn handle_metrics(shared: &RouterShared, core: &ServiceCore) -> Response {
    let mut text = core.metrics().render_http(core.queue_depth());
    sigstr_server::metrics::render_trace(&mut text, core.recorder());
    let states: Vec<(String, u64, &ShardCounters)> = shared
        .shards
        .iter()
        .map(|s| (s.addr.clone(), s.health.state().code(), &s.counters))
        .collect();
    shared.metrics.render(&mut text, &states);
    text_response(200, text)
}

/// `GET /debug/traces` — the router's own flight recorder. With
/// `join=1`, each trace is augmented with the shard-side traces that
/// carry the same ID: the shard addresses are read off the trace's own
/// attempt spans, each is asked `GET /debug/traces?id=…` over a fresh
/// short-timeout connection, and whatever comes back is spliced in
/// under `"shards"`. Join failures degrade silently — the router-side
/// trace is always served.
fn handle_traces(shared: &RouterShared, core: &ServiceCore, request: &Request) -> Response {
    let join = request
        .query_param("join")
        .is_some_and(|v| !v.is_empty() && v != "0");
    if !join {
        return sigstr_server::service::traces_response(core, request);
    }
    let filter = sigstr_server::service::trace_filter_from(request);
    let traces = core.recorder().snapshot(&filter);
    let rendered: Vec<String> = traces
        .iter()
        .map(|trace| {
            let mut addrs: Vec<&str> = trace
                .spans
                .iter()
                .flat_map(|span| span.attrs.iter())
                .filter(|(key, _)| *key == "shard")
                .map(|(_, value)| value.as_str())
                .collect();
            addrs.sort_unstable();
            addrs.dedup();
            let mut shard_traces: Vec<Json> = Vec::new();
            for addr in addrs {
                shard_traces.extend(fetch_shard_traces(shared, addr, &trace.id.to_hex()));
            }
            if shard_traces.is_empty() {
                trace.to_json()
            } else {
                let joined = Json::Arr(shard_traces)
                    .encode()
                    .unwrap_or_else(|_| "[]".to_string());
                trace.to_json_with(&format!(",\"shards\":{joined}"))
            }
        })
        .collect();
    Response::new(
        200,
        "application/json",
        obs::render_traces_body(&rendered).into_bytes(),
    )
}

/// Ask one shard for the traces matching `id`. A dedicated connection
/// (not the data-path pool) with a tight timeout: a slow or dead shard
/// costs the join a beat, never a pooled socket.
fn fetch_shard_traces(shared: &RouterShared, addr: &str, id: &str) -> Vec<Json> {
    let fetch = || -> io::Result<Vec<Json>> {
        let mut conn = ClientConn::connect_with(
            addr,
            ClientConfig {
                connect_timeout: Duration::from_millis(250),
                read_timeout: Duration::from_millis(500),
                ..shared.config.client
            },
        )?;
        let response = conn.request("GET", &format!("/debug/traces?id={id}"), None)?;
        if response.status != 200 {
            return Ok(Vec::new());
        }
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 trace body"))?;
        let body = Json::decode(text.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(body
            .get("traces")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default())
    };
    fetch().unwrap_or_default()
}

/// The list of currently-unreachable shard addresses; a non-empty list
/// means fan-out answers are flagged `"degraded"`.
fn unreachable_shards(shared: &RouterShared) -> Vec<String> {
    shared
        .shards
        .iter()
        .filter(|s| !s.health.routable())
        .map(|s| s.addr.clone())
        .collect()
}

fn degraded_fields(shared: &RouterShared, unreachable: Vec<String>) -> Vec<(String, Json)> {
    let degraded = !unreachable.is_empty();
    if degraded {
        shared
            .metrics
            .degraded_responses
            .fetch_add(1, Ordering::Relaxed);
    }
    vec![
        ("degraded".into(), Json::Bool(degraded)),
        (
            "unreachable".into(),
            Json::Arr(unreachable.into_iter().map(Json::Str).collect()),
        ),
    ]
}

fn handle_documents(shared: &RouterShared) -> Response {
    let docs: Vec<Json> = {
        let directory = shared.directory.read().unwrap();
        directory
            .entries
            .iter()
            .map(|(_, _, doc)| doc.clone())
            .collect()
    };
    let mut fields = vec![("documents".to_string(), Json::Arr(docs))];
    fields.extend(degraded_fields(shared, unreachable_shards(shared)));
    json_response(200, Json::Obj(fields))
}

fn body_json(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| json_response(400, wire::error_json("request body is not UTF-8")))?;
    Json::decode(text).map_err(|e| json_response(400, wire::error_json(&e.to_string())))
}

fn shard_for_doc(shared: &RouterShared, name: &str) -> Arc<ShardRuntime> {
    let index = {
        let directory = shared.directory.read().unwrap();
        directory.shard_of.get(name).copied()
    }
    .unwrap_or_else(|| shared.ring.shard_for(name));
    Arc::clone(&shared.shards[index])
}

fn unavailable(message: String) -> Response {
    json_response(503, wire::error_json(&message)).with_header("Retry-After", "1")
}

/// Single-document query: routed by the directory (ring as fallback for
/// unknown names), shard answer passed through verbatim — bit-identity
/// by construction. A down shard means this *specific* document is
/// unavailable, so the honest answer is `503` + `Retry-After`, not a
/// degraded 200.
///
/// A `410 Gone` means the shard *used to* hold the document and a live
/// rebalance moved it: the router refreshes its directory synchronously
/// and re-routes once to the new owner, so a moved document is served
/// without waiting for the background checker to notice — the client
/// never sees the move.
fn handle_query(shared: &RouterShared, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(doc) = json.get("doc").and_then(Json::as_str) else {
        return json_response(400, wire::error_json("missing string field `doc`"));
    };
    let body = std::str::from_utf8(&request.body).expect("validated above");
    let deadline = Instant::now() + shared.config.deadline;
    let mut shard = shard_for_doc(shared, doc);
    let mut rerouted = false;
    loop {
        match shard_call(shared, &shard, "POST", "/v1/query", Some(body), deadline) {
            Ok(response) if response.status == 410 && !rerouted => {
                let mut span = obs::span("reroute");
                span.attr("doc", doc);
                span.attr("from", shard.addr.as_str());
                shared
                    .metrics
                    .moved_rerouted
                    .fetch_add(1, Ordering::Relaxed);
                refresh_directory(shared);
                let next = shard_for_doc(shared, doc);
                span.attr("to", next.addr.as_str());
                if next.index == shard.index {
                    // The refreshed directory still points here — the
                    // shard's word stands.
                    return passthrough(response);
                }
                shard = next;
                rerouted = true;
            }
            Ok(response) => return passthrough(response),
            Err(e) => return unavailable(format!("shard {} unreachable: {e}", shard.addr)),
        }
    }
}

fn passthrough(response: HttpResponse) -> Response {
    Response::new(response.status, "application/json", response.body)
}

// ---------------------------------------------------------------------------
// Live documents: append / watch forwarding.
// ---------------------------------------------------------------------------

/// The document name from a live-append path
/// (`/v1/documents/{name}/append`).
fn append_route_doc(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/documents/")?
        .strip_suffix("/append")
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

/// One unhedged, unretried forward to a shard, inline on the calling
/// worker. The write path (appends, watch registration) must never
/// duplicate side effects, so there is exactly **one** attempt — a
/// transport failure surfaces as `503` and the client owns the retry
/// decision. Also used for long-polls, whose custom `read_timeout`
/// exceeds anything the hedging machinery would tolerate; those skip
/// the p95 window (`record_latency: false`) so a 10-second hold doesn't
/// read as a slow shard and blunt the query path's hedge trigger.
fn forward_once(
    shared: &RouterShared,
    shard: &Arc<ShardRuntime>,
    method: &str,
    target: &str,
    body: Option<&str>,
    read_timeout: Duration,
    record_latency: bool,
) -> io::Result<HttpResponse> {
    if !shard.health.routable() {
        return Err(io::Error::new(
            io::ErrorKind::NotConnected,
            format!("shard {} is down", shard.addr),
        ));
    }
    shard.counters.calls.fetch_add(1, Ordering::Relaxed);
    let mut span = obs::span("attempt");
    span.attr("shard", shard.addr.as_str());
    span.attr("kind", "forward");
    let trace_hex = obs::current_id_hex();
    let started = Instant::now();
    let result = (|| {
        let mut conn = shard.pool.get()?;
        conn.set_read_timeout(read_timeout)?;
        let headers: Vec<(&str, &str)> = trace_hex
            .as_deref()
            .map(|hex| (obs::TRACE_HEADER, hex))
            .into_iter()
            .collect();
        let response = conn.request_with(method, target, body, &headers)?;
        conn.set_read_timeout(shared.config.client.read_timeout)?;
        let closing = response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if !closing {
            shard.pool.put(conn);
        }
        Ok(response)
    })();
    match &result {
        Ok(_) => {
            span.attr("outcome", "ok");
            shard.health.record_data_success();
            if record_latency {
                let us = duration_us(started.elapsed());
                shard.counters.latency.observe_us(us);
                shard.latency.lock().unwrap().record(us);
            }
        }
        Err(_) => {
            span.attr("outcome", "error");
            shard.counters.errors.fetch_add(1, Ordering::Relaxed);
            shard.health.record_data_failure(Instant::now());
            if !shard.health.routable() {
                shard.pool.drain();
            }
        }
    }
    result
}

/// Bump `sigstr_router_alerts_delivered_total` by however many alerts a
/// shard's append/poll response carries.
fn count_delivered_alerts(shared: &RouterShared, response: &HttpResponse) {
    if response.status != 200 {
        return;
    }
    let delivered = std::str::from_utf8(&response.body)
        .ok()
        .and_then(|text| Json::decode(text.trim()).ok())
        .and_then(|body| {
            body.get("alerts")
                .and_then(Json::as_array)
                .map(<[Json]>::len)
        })
        .unwrap_or(0);
    if delivered > 0 {
        shared
            .metrics
            .alerts_delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
    }
}

/// Forward a write-path request to the document's owning shard, with
/// the same `410 Gone` handling as queries: a shard that just released
/// the document to a rebalance triggers one synchronous directory
/// refresh and one re-route. Safe even though the request is a write —
/// `410` is answered *before* any state changes.
fn forward_to_owner(
    shared: &RouterShared,
    doc: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
    count_alerts: bool,
) -> Response {
    let mut shard = shard_for_doc(shared, doc);
    let mut rerouted = false;
    loop {
        match forward_once(
            shared,
            &shard,
            method,
            target,
            body,
            shared.config.client.read_timeout,
            true,
        ) {
            Ok(response) if response.status == 410 && !rerouted => {
                let mut span = obs::span("reroute");
                span.attr("doc", doc);
                span.attr("from", shard.addr.as_str());
                shared
                    .metrics
                    .moved_rerouted
                    .fetch_add(1, Ordering::Relaxed);
                refresh_directory(shared);
                let next = shard_for_doc(shared, doc);
                span.attr("to", next.addr.as_str());
                if next.index == shard.index {
                    return passthrough(response);
                }
                shard = next;
                rerouted = true;
            }
            Ok(response) => {
                if count_alerts {
                    count_delivered_alerts(shared, &response);
                }
                return passthrough(response);
            }
            Err(e) => return unavailable(format!("shard {} unreachable: {e}", shard.addr)),
        }
    }
}

/// `POST /v1/documents/{name}/append` — routed to the owning shard,
/// exactly one attempt (appends are not idempotent; see
/// [`forward_once`]).
fn handle_append(shared: &RouterShared, request: &Request, doc: &str) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return json_response(400, wire::error_json("request body is not UTF-8"));
    };
    shared
        .metrics
        .appends_routed
        .fetch_add(1, Ordering::Relaxed);
    forward_to_owner(
        shared,
        doc,
        "POST",
        &format!("/v1/documents/{doc}/append"),
        Some(body),
        true,
    )
}

/// `POST /v1/watch` — routed by the `doc` field of the body.
fn handle_watch_register(shared: &RouterShared, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(doc) = json.get("doc").and_then(Json::as_str) else {
        return json_response(400, wire::error_json("missing string field `doc`"));
    };
    let body = std::str::from_utf8(&request.body).expect("validated above");
    shared
        .metrics
        .watch_registers
        .fetch_add(1, Ordering::Relaxed);
    forward_to_owner(shared, doc, "POST", "/v1/watch", Some(body), false)
}

/// `DELETE /v1/watch?doc=&watch=` — forwarded to the owning shard with
/// the query string rebuilt from the validated parameters.
fn handle_watch_forward_by_param(
    shared: &RouterShared,
    request: &Request,
    method: &str,
) -> Response {
    let Some(doc) = request.query_param("doc") else {
        return json_response(400, wire::error_json("missing query parameter `doc`"));
    };
    let Some(watch) = request
        .query_param("watch")
        .and_then(|w| w.parse::<u64>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `watch`"),
        );
    };
    shared
        .metrics
        .watch_registers
        .fetch_add(1, Ordering::Relaxed);
    forward_to_owner(
        shared,
        doc,
        method,
        &format!("/v1/watch?doc={doc}&watch={watch}"),
        None,
        false,
    )
}

/// The ceiling on a forwarded long-poll's hold (mirrors the shard's own
/// cap) and the transport slack allowed past it before the read times
/// out.
const WATCH_POLL_MAX_MS: u64 = 30_000;
const WATCH_POLL_SLACK: Duration = Duration::from_secs(5);

/// `GET /v1/watch?doc=&since=&timeout_ms=` — forwarded to the owning
/// shard as a blocking hold: the shard parks the request until an alert
/// arrives or `timeout_ms` elapses, so the router's read timeout must
/// outlive the hold (not the 2-second data-path deadline). Long-poll
/// latencies deliberately stay out of the hedge window.
fn handle_watch_poll(shared: &RouterShared, request: &Request) -> Response {
    let Some(doc) = request.query_param("doc") else {
        return json_response(400, wire::error_json("missing query parameter `doc`"));
    };
    let timeout_ms = request
        .query_param("timeout_ms")
        .and_then(|t| t.parse::<u64>().ok())
        .unwrap_or(10_000)
        .min(WATCH_POLL_MAX_MS);
    let since = match request.query_param("since") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(since) => since,
            Err(_) => {
                return json_response(
                    400,
                    wire::error_json("query parameter `since` must be a non-negative integer"),
                )
            }
        },
    };
    let target = format!("/v1/watch?doc={doc}&since={since}&timeout_ms={timeout_ms}");
    let shard = shard_for_doc(shared, doc);
    let read_timeout = Duration::from_millis(timeout_ms) + WATCH_POLL_SLACK;
    let response = forward_once(shared, &shard, "GET", &target, None, read_timeout, false);
    shared.metrics.watch_polls.fetch_add(1, Ordering::Relaxed);
    match response {
        Ok(response) => {
            count_delivered_alerts(shared, &response);
            passthrough(response)
        }
        Err(e) => unavailable(format!("shard {} unreachable: {e}", shard.addr)),
    }
}

/// `GET /v1/live` — every shard's live documents, merged in name order.
fn handle_live(shared: &RouterShared) -> Response {
    let results = fan_out(shared, "/v1/live");
    let mut docs: Vec<Json> = Vec::new();
    let mut unreachable: Vec<String> = Vec::new();
    let mut reached = 0usize;
    for (shard, call) in results {
        let parsed = call.ok().filter(|r| r.status == 200).and_then(|r| {
            let body = Json::decode(std::str::from_utf8(&r.body).ok()?.trim()).ok()?;
            body.get("docs")
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
        });
        match parsed {
            Some(list) => {
                reached += 1;
                docs.extend(list);
            }
            None => unreachable.push(shard.addr.clone()),
        }
    }
    if reached == 0 {
        return unavailable("all shards unreachable".to_string());
    }
    docs.sort_by(|a, b| {
        let name = |j: &Json| {
            j.get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        name(a).cmp(&name(b))
    });
    let mut fields = vec![("docs".to_string(), Json::Arr(docs))];
    fields.extend(degraded_fields(shared, unreachable));
    json_response(200, Json::Obj(fields))
}

/// Scatter a batch across shards and gather the slots back in request
/// order. Jobs whose shard is unreachable come back as per-slot
/// `{"status": 503}` objects inside a `200` envelope flagged
/// `"degraded"` — partial answers beat none. All jobs are validated
/// up front so a malformed job fails the whole request with the same
/// `400` a single server would give.
fn handle_batch(shared: &RouterShared, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(jobs) = json.get("jobs").and_then(Json::as_array) else {
        return json_response(400, wire::error_json("missing array field `jobs`"));
    };
    let mut slot_docs: Vec<&str> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let Some(doc) = job.get("doc").and_then(Json::as_str) else {
            return json_response(
                400,
                wire::error_json(&format!("job {i}: missing string field `doc`")),
            );
        };
        if let Err(message) = job
            .get("query")
            .ok_or_else(|| "missing field `query`".to_string())
            .and_then(wire::query_from_json)
        {
            return json_response(400, wire::error_json(&format!("job {i}: {message}")));
        }
        slot_docs.push(doc);
    }
    let started = Instant::now();
    let deadline = started + shared.config.deadline;
    let mut results: Vec<Option<Json>> = vec![None; jobs.len()];
    let mut failed: Vec<String> = Vec::new();
    let groups = scatter_slots(
        shared,
        jobs,
        &slot_docs,
        (0..jobs.len()).collect(),
        deadline,
        &mut results,
        &mut failed,
    );
    // Slots answered `410 Gone` hit a shard that just released their
    // document to a rebalance: refresh the directory once and re-route
    // exactly those slots to their new owners.
    let moved: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            r.as_ref()
                .and_then(|json| json.get("status"))
                .and_then(Json::as_u64)
                == Some(410)
        })
        .map(|(slot, _)| slot)
        .collect();
    if !moved.is_empty() {
        shared
            .metrics
            .moved_rerouted
            .fetch_add(moved.len() as u64, Ordering::Relaxed);
        refresh_directory(shared);
        scatter_slots(
            shared,
            jobs,
            &slot_docs,
            moved,
            deadline,
            &mut results,
            &mut failed,
        );
    }
    shared
        .metrics
        .fanout_latency
        .observe_us(duration_us(started.elapsed()));
    if !failed.is_empty() && failed.len() == groups {
        return unavailable("all shards unreachable".to_string());
    }
    let results: Vec<Json> = results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect();
    let mut fields = vec![("results".to_string(), Json::Arr(results))];
    fields.extend(degraded_fields(shared, failed));
    json_response(200, Json::Obj(fields))
}

/// One scatter pass: group `slots` by their owning shard (directory
/// first, ring fallback), fan the sub-batches out concurrently, and
/// write each slot's answer into `results`. Unreachable shards fill
/// their slots with `{"status": 503}` objects and are pushed onto
/// `failed`. Returns the number of shard groups contacted.
fn scatter_slots(
    shared: &RouterShared,
    jobs: &[Json],
    slot_docs: &[&str],
    slots: Vec<usize>,
    deadline: Instant,
    results: &mut [Option<Json>],
    failed: &mut Vec<String>,
) -> usize {
    let mut grouped: HashMap<usize, Vec<usize>> = HashMap::new();
    for slot in slots {
        grouped
            .entry(shard_for_doc(shared, slot_docs[slot]).index)
            .or_default()
            .push(slot);
    }
    let mut groups: Vec<(usize, Vec<usize>)> = grouped.into_iter().collect();
    groups.sort_by_key(|&(shard_index, _)| shard_index);
    let trace = obs::current();
    thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .map(|(shard_index, slots)| {
                let shard = Arc::clone(&shared.shards[*shard_index]);
                let sub_jobs: Vec<Json> = slots.iter().map(|&s| jobs[s].clone()).collect();
                let trace = trace.clone();
                scope.spawn(move || {
                    let _ambient = trace.map(obs::attach);
                    let body = Json::Obj(vec![("jobs".into(), Json::Arr(sub_jobs))])
                        .encode()
                        .expect("batch body re-encodes");
                    let call =
                        shard_call(shared, &shard, "POST", "/v1/batch", Some(&body), deadline);
                    (shard, call)
                })
            })
            .collect();
        for (handle, (_, slots)) in handles.into_iter().zip(&groups) {
            let (shard, call) = handle.join().expect("batch scatter thread panicked");
            let parsed = call
                .ok()
                .and_then(|response| parse_batch_results(&response, slots.len()));
            match parsed {
                Some(shard_results) => {
                    for (&slot, result) in slots.iter().zip(shard_results) {
                        results[slot] = Some(result);
                    }
                }
                None => {
                    for &slot in slots {
                        results[slot] = Some(Json::Obj(vec![
                            ("doc".into(), Json::Str(slot_docs[slot].to_string())),
                            ("status".into(), Json::Int(503)),
                            (
                                "error".into(),
                                Json::Str(format!("shard {} unreachable", shard.addr)),
                            ),
                        ]));
                    }
                    failed.push(shard.addr.clone());
                }
            }
        }
    });
    groups.len()
}

/// A shard's `/v1/batch` answer, iff it is well-formed and has exactly
/// the expected number of results.
fn parse_batch_results(response: &HttpResponse, expected: usize) -> Option<Vec<Json>> {
    if response.status != 200 {
        return None;
    }
    let text = std::str::from_utf8(&response.body).ok()?;
    let body = Json::decode(text.trim()).ok()?;
    let results = body.get("results").and_then(Json::as_array)?;
    (results.len() == expected).then(|| results.to_vec())
}

// ---------------------------------------------------------------------------
// Merged fan-out routes.
// ---------------------------------------------------------------------------

/// Fan a GET out to every shard concurrently. Returns each shard's
/// outcome in shard-index order.
fn fan_out(
    shared: &RouterShared,
    target: &str,
) -> Vec<(Arc<ShardRuntime>, io::Result<HttpResponse>)> {
    let deadline = Instant::now() + shared.config.deadline;
    let trace = obs::current();
    thread::scope(|scope| {
        let handles: Vec<_> = shared
            .shards
            .iter()
            .map(|shard| {
                let trace = trace.clone();
                scope.spawn(move || {
                    let _ambient = trace.map(obs::attach);
                    let call = shard_call(shared, shard, "GET", target, None, deadline);
                    (Arc::clone(shard), call)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out thread panicked"))
            .collect()
    })
}

/// Decode the `hits` array of a shard's merged answer.
fn parse_hits(response: &HttpResponse) -> Option<Vec<DocHit>> {
    if response.status != 200 {
        return None;
    }
    let text = std::str::from_utf8(&response.body).ok()?;
    let body = Json::decode(text.trim()).ok()?;
    let hits = body.get("hits").and_then(Json::as_array)?;
    hits.iter().map(|h| wire::hit_from_json(h).ok()).collect()
}

/// Regroup shard-local hits into global per-document lists: group by
/// name (preserving each shard's within-document rank order), index
/// documents by lexicographic rank — the global document order contract
/// — and sort the groups by that rank. The output feeds
/// [`merge_ranked`] (top-t) or a plain concatenation (threshold), both
/// of which then behave exactly as they would over one big corpus.
///
/// During a rebalance's transition window a document can be reported by
/// **both** its old and new shard (the copy is committed on the
/// destination before the source releases it). The two copies are
/// bit-identical by the rebalance's checksum contract, so exactly one
/// contribution per name is kept — the directory owner's when it is
/// among the contributors, the lowest shard index otherwise (the same
/// tie-break [`Directory::build`] uses) — and merged answers stay
/// bit-identical to a single corpus throughout the move.
/// One document's hit items from each shard that reported it.
type PerShard = Vec<(usize, Vec<Scored>)>;

fn regroup(shared: &RouterShared, shard_hits: ShardHits) -> Vec<(usize, String, Vec<Scored>)> {
    let mut contributions: Vec<(String, PerShard)> = Vec::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();
    for (shard, hits) in shard_hits {
        for hit in hits {
            let slot = match by_name.get(&hit.name) {
                Some(&slot) => slot,
                None => {
                    by_name.insert(hit.name.clone(), contributions.len());
                    contributions.push((hit.name, Vec::new()));
                    contributions.len() - 1
                }
            };
            let per_shard = &mut contributions[slot].1;
            match per_shard.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, items)) => items.push(hit.item),
                None => per_shard.push((shard, vec![hit.item])),
            }
        }
    }
    let owner_of: HashMap<String, usize> = {
        let directory = shared.directory.read().unwrap();
        contributions
            .iter()
            .filter_map(|(name, _)| {
                directory
                    .shard_of
                    .get(name)
                    .map(|&shard| (name.clone(), shard))
            })
            .collect()
    };
    let groups: Vec<(String, Vec<Scored>)> = contributions
        .into_iter()
        .map(|(name, mut per_shard)| {
            let chosen = if per_shard.len() == 1 {
                0
            } else {
                let owner = owner_of
                    .get(&name)
                    .copied()
                    .filter(|o| per_shard.iter().any(|(s, _)| s == o))
                    .unwrap_or_else(|| per_shard.iter().map(|(s, _)| *s).min().expect("non-empty"));
                per_shard
                    .iter()
                    .position(|(s, _)| *s == owner)
                    .expect("owner is a contributor")
            };
            let items = per_shard.swap_remove(chosen).1;
            (name, items)
        })
        .collect();
    // Global index: lexicographic rank over the *whole* corpus (the
    // directory), not just documents with hits — a hitless document
    // still occupies a rank, exactly as it would in a single corpus.
    let directory = shared.directory.read().unwrap();
    let stale = groups
        .iter()
        .any(|(name, _)| !directory.global.contains_key(name));
    let rank: HashMap<String, usize> = if stale {
        // The directory hasn't caught up with a membership change; fall
        // back to ranking over the union of known and observed names.
        let mut all: Vec<String> = directory
            .global
            .keys()
            .cloned()
            .chain(groups.iter().map(|(name, _)| name.clone()))
            .collect();
        all.sort_unstable();
        all.dedup();
        all.into_iter().enumerate().map(|(i, n)| (n, i)).collect()
    } else {
        HashMap::new()
    };
    let mut per_doc: Vec<(usize, String, Vec<Scored>)> = groups
        .into_iter()
        .map(|(name, items)| {
            let index = if stale {
                rank[&name]
            } else {
                directory.global[&name]
            };
            (index, name, items)
        })
        .collect();
    per_doc.sort_by_key(|&(index, _, _)| index);
    per_doc
}

/// Shard-local hits, keyed by the contributing shard's index.
type ShardHits = Vec<(usize, Vec<DocHit>)>;

/// Shared scaffolding for the two merged routes: fan out, split
/// successes from failures, and bail out `503` when *no* shard
/// answered.
fn gather_hits(shared: &RouterShared, target: &str) -> Result<(ShardHits, Vec<String>), Response> {
    let results = fan_out(shared, target);
    let mut shard_hits: ShardHits = Vec::new();
    let mut unreachable: Vec<String> = Vec::new();
    for (shard, call) in results {
        match call.ok().and_then(|response| parse_hits(&response)) {
            Some(hits) => shard_hits.push((shard.index, hits)),
            None => unreachable.push(shard.addr.clone()),
        }
    }
    if shard_hits.is_empty() {
        return Err(unavailable("all shards unreachable".to_string()));
    }
    Ok((shard_hits, unreachable))
}

fn handle_merged_top(shared: &RouterShared, request: &Request) -> Response {
    let Some(t) = request
        .query_param("t")
        .and_then(|t| t.parse::<usize>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `t`"),
        );
    };
    let started = Instant::now();
    let (shard_hits, unreachable) = match gather_hits(shared, &format!("/v1/merged/top?t={t}")) {
        Ok(gathered) => gathered,
        Err(response) => return response,
    };
    let mut merge_span = obs::span("merge");
    let per_doc = regroup(shared, shard_hits);
    let borrowed: Vec<(usize, &str, &[Scored])> = per_doc
        .iter()
        .map(|(i, n, s)| (*i, n.as_str(), s.as_slice()))
        .collect();
    let hits = merge_ranked(&borrowed, t);
    merge_span.attr_u64("documents", per_doc.len() as u64);
    merge_span.attr_u64("hits", hits.len() as u64);
    drop(merge_span);
    shared
        .metrics
        .fanout_latency
        .observe_us(duration_us(started.elapsed()));
    let mut fields = vec![
        ("t".to_string(), Json::Int(t as u64)),
        (
            "hits".to_string(),
            Json::Arr(hits.iter().map(wire::hit_to_json).collect()),
        ),
    ];
    fields.extend(degraded_fields(shared, unreachable));
    json_response(200, Json::Obj(fields))
}

fn handle_merged_threshold(shared: &RouterShared, request: &Request) -> Response {
    let Some(alpha) = request
        .query_param("alpha")
        .and_then(|a| a.parse::<f64>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `alpha`"),
        );
    };
    if !alpha.is_finite() {
        return json_response(400, wire::error_json("`alpha` must be finite"));
    }
    let started = Instant::now();
    let (shard_hits, unreachable) =
        match gather_hits(shared, &format!("/v1/merged/threshold?alpha={alpha}")) {
            Ok(gathered) => gathered,
            Err(response) => return response,
        };
    // Threshold semantics: every hit, in global document order, each
    // document's hits in its shard-reported order.
    let mut merge_span = obs::span("merge");
    let per_doc = regroup(shared, shard_hits);
    merge_span.attr_u64("documents", per_doc.len() as u64);
    let hits: Vec<DocHit> = per_doc
        .into_iter()
        .flat_map(|(index, name, items)| {
            items.into_iter().map(move |item| DocHit {
                doc: index,
                name: name.clone(),
                item,
            })
        })
        .collect();
    merge_span.attr_u64("hits", hits.len() as u64);
    drop(merge_span);
    shared
        .metrics
        .fanout_latency
        .observe_us(duration_us(started.elapsed()));
    let mut fields = vec![
        ("alpha".to_string(), Json::Num(alpha)),
        ("count".to_string(), Json::Int(hits.len() as u64)),
        (
            "hits".to_string(),
            Json::Arr(hits.iter().map(wire::hit_to_json).collect()),
        ),
    ];
    fields.extend(degraded_fields(shared, unreachable));
    json_response(200, Json::Obj(fields))
}

// ---------------------------------------------------------------------------
// Compile-time thread-safety contract (mirrors the server crate).
// ---------------------------------------------------------------------------

const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<RouterHandler>();
    require_send_sync::<RouterShared>();
    require_send_sync::<ShardRuntime>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_window_p95_tracks_the_tail() {
        let mut window = LatencyWindow::default();
        assert_eq!(window.p95(), None);
        for _ in 0..19 {
            window.record(100);
        }
        window.record(9_000);
        // 20 samples, index 19 → the single outlier.
        assert_eq!(window.p95(), Some(9_000));
        // The window is bounded: old samples roll off.
        for _ in 0..LATENCY_WINDOW {
            window.record(50);
        }
        assert_eq!(window.p95(), Some(50));
    }

    #[test]
    fn directory_build_sorts_dedups_and_ranks() {
        let directory = Directory::build(vec![
            ("beta".into(), 1, Json::Null),
            ("alpha".into(), 0, Json::Null),
            ("beta".into(), 0, Json::Null),
            ("gamma".into(), 1, Json::Null),
        ]);
        assert_eq!(directory.entries.len(), 3);
        assert_eq!(directory.global["alpha"], 0);
        assert_eq!(directory.global["beta"], 1);
        assert_eq!(directory.global["gamma"], 2);
        // Duplicate name resolves to the lowest shard index.
        assert_eq!(directory.shard_of["beta"], 0);
    }

    #[test]
    fn bind_rejects_an_empty_shard_list() {
        let err = RouterServer::bind(RouterConfig::new(Vec::new()))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn hedge_trigger_clamps_and_cold_starts_at_max() {
        let mut config = RouterConfig::new(vec!["127.0.0.1:1".into()]);
        config.hedge = HedgePolicy::P95 {
            min: Duration::from_millis(2),
            max: Duration::from_millis(20),
        };
        let shard = ShardRuntime {
            index: 0,
            addr: "127.0.0.1:1".into(),
            pool: Pool::new("127.0.0.1:1".into(), config.client, 1),
            health: Health::new(config.health_policy(), Instant::now(), 1),
            counters: ShardCounters::default(),
            latency: Mutex::new(LatencyWindow::default()),
            generation: AtomicU64::new(0),
        };
        let shared = RouterShared {
            ring: Ring::new(1, 8),
            config,
            shards: Vec::new(),
            metrics: RouterMetrics::default(),
            directory: RwLock::new(Directory::default()),
            directory_refresh: Mutex::new(()),
            directory_stale: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            checker: Mutex::new(None),
        };
        // No samples yet: conservative trigger at max.
        assert_eq!(
            hedge_trigger(&shared, &shard),
            Some(Duration::from_millis(20))
        );
        // Fast shard: trigger clamps up to min.
        for _ in 0..LATENCY_WINDOW {
            shard.latency.lock().unwrap().record(100); // 0.1 ms
        }
        assert_eq!(
            hedge_trigger(&shared, &shard),
            Some(Duration::from_millis(2))
        );
        // Slow shard: clamps down to max.
        for _ in 0..LATENCY_WINDOW {
            shard.latency.lock().unwrap().record(1_000_000);
        }
        assert_eq!(
            hedge_trigger(&shared, &shard),
            Some(Duration::from_millis(20))
        );
    }
}
