//! Consistent hashing of document names onto shards.
//!
//! The ring is the router's *placement contract*: a document named `d`
//! lives on `ring.shard_for("d")`, full stop. Operators partition a
//! corpus with `sigstr route --plan` (which prints exactly this
//! mapping), shards serve their slice, and the router forwards
//! single-document queries without any per-document state. Virtual
//! nodes (many ring points per shard) keep the partition balanced, and
//! consistent hashing keeps it *stable*: adding shard `N+1` only moves
//! the keys that land on the new shard's points — every other
//! document's placement survives, so a fleet resize re-indexes a
//! fraction of the corpus instead of all of it.
//!
//! The hash is FNV-1a (64-bit): tiny, dependency-free, deterministic
//! across platforms and releases — determinism matters more here than
//! avalanche quality, because the mapping is part of the operational
//! contract.

/// 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// SplitMix64 finalizer. FNV-1a alone clusters badly on short,
/// structured keys (`shard-0#vnode-1`, `doc-17`, …) — the low bytes
/// barely diffuse into the high bits that decide ring placement — so
/// ring positions run every hash through this avalanche step.
fn mix(mut hash: u64) -> u64 {
    hash = (hash ^ (hash >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    hash = (hash ^ (hash >> 27)).wrapping_mul(0x94d049bb133111eb);
    hash ^ (hash >> 31)
}

/// A consistent-hash ring over `shards` shards.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build a ring with `vnodes` points per shard. Shard identity is
    /// positional (`shard-{index}`), so the order of the `--shards`
    /// list is part of the placement contract.
    pub fn new(shards: usize, vnodes: usize) -> Ring {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((
                    mix(fnv1a(format!("shard-{shard}#vnode-{vnode}").as_bytes())),
                    shard,
                ));
            }
        }
        // Ties (64-bit collisions) resolve to the lower shard index —
        // astronomically rare, but the sort must still be total for the
        // mapping to be deterministic.
        points.sort_unstable();
        Ring { points }
    }

    /// The shard owning `name`: the first ring point at or clockwise of
    /// the name's hash (wrapping).
    pub fn shard_for(&self, name: &str) -> usize {
        let h = mix(fnv1a(name.as_bytes()));
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = Ring::new(3, 64);
        for i in 0..1000 {
            let name = format!("doc-{i}");
            let shard = ring.shard_for(&name);
            assert!(shard < 3);
            assert_eq!(shard, ring.shard_for(&name), "same name, same shard");
            assert_eq!(
                shard,
                Ring::new(3, 64).shard_for(&name),
                "same ring, same shard"
            );
        }
    }

    #[test]
    fn vnodes_spread_the_load() {
        let ring = Ring::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[ring.shard_for(&format!("doc-{i}"))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 400,
                "shard {shard} owns only {count}/4000 documents — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction() {
        let before = Ring::new(3, 64);
        let after = Ring::new(4, 64);
        let moved = (0..3000)
            .filter(|i| {
                let name = format!("doc-{i}");
                before.shard_for(&name) != after.shard_for(&name)
            })
            .count();
        // Ideal is 1/4 of keys; anything under half demonstrates the
        // consistency property (a modulo hash would move ~3/4).
        assert!(
            moved < 1500,
            "adding a shard moved {moved}/3000 documents — not consistent"
        );
        // And it must move *some* keys to the new shard.
        assert!(moved > 0);
    }
}
