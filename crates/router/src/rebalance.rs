//! Crash-safe shard rebalancing: diff two consistent-hash layouts,
//! compute the minimal document move set, and migrate snapshots between
//! shard corpus directories without ever losing or duplicating a
//! document.
//!
//! ## Commit order
//!
//! Each move runs copy → verify → commit-on-destination → remove-from-
//! source:
//!
//! 1. the snapshot file is copied into the destination corpus directory
//!    under a `.rebalance` temporary name, fsync'd, re-read, and its
//!    checksum and header geometry verified against the source;
//! 2. the temporary is renamed into place (directory fsync'd) and the
//!    destination manifest is atomically rewritten to include the
//!    document — from this instant the destination owns a complete,
//!    verified copy;
//! 3. only then is the document removed from the source manifest and
//!    its source snapshot deleted.
//!
//! A crash at any point leaves the document in at least one manifest:
//! before step 2 the source is untouched; between steps 2 and 3 **both**
//! shards hold identical copies (the transition window the router's
//! owner-dedup in `regroup` exists for); after step 3 only the
//! destination does. Every step is idempotent, so re-running converges.
//!
//! ## Journal
//!
//! A plain-text journal records the planned moves and per-move progress
//! (`committed` = destination owns it, `done` = source released it).
//! The filesystem — not the journal — is the source of truth: a resume
//! recomputes the plan from the manifests as they are on disk. The
//! journal's job is to detect an in-progress rebalance and refuse to
//! resume it under a *different* target layout, where "minimal move
//! set" would silently mean something else.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sigstr_core::snapshot;
use sigstr_corpus::{manifest, CorpusError, DocumentEntry};

use crate::hash::Ring;

type Result<T> = std::result::Result<T, CorpusError>;

/// First line of every version-1 rebalance journal.
pub const JOURNAL_HEADER: &str = "sigstr-rebalance v1";

/// Default journal file name, created inside the first destination
/// shard's corpus directory (extra files there are ignored by the
/// corpus, which only trusts its manifest).
pub const JOURNAL_FILE: &str = "rebalance.journal";

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> CorpusError + '_ {
    move |e| CorpusError::Io {
        path: path.display().to_string(),
        details: e.to_string(),
    }
}

/// One document that must change shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveStep {
    /// The manifest entry being moved (identical on source and, once
    /// committed, destination).
    pub entry: DocumentEntry,
    /// Source corpus directory (current holder).
    pub src: PathBuf,
    /// Destination corpus directory (ring owner under the new layout).
    pub dst: PathBuf,
    /// The destination already holds a committed copy (a previous run
    /// crashed between commit and source-removal); only the source
    /// release remains.
    pub committed: bool,
}

/// The minimal move set taking the fleet from its current on-disk
/// placement to the target layout.
#[derive(Debug, Clone)]
pub struct RebalancePlan {
    /// Destination layout: shard corpus directories in ring order.
    pub to: Vec<PathBuf>,
    /// Virtual nodes per shard used to build the target ring.
    pub vnodes: usize,
    /// Documents that must move, sorted by name (deterministic order —
    /// an interrupted run and its resume walk the same sequence).
    pub moves: Vec<MoveStep>,
    /// Documents already on their target shard.
    pub already_placed: usize,
}

impl RebalancePlan {
    /// Total documents across the fleet.
    pub fn total(&self) -> usize {
        self.moves.len() + self.already_placed
    }
}

/// What an [`execute`] run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Names moved by this run, in execution order.
    pub moved: Vec<String>,
    /// Documents that were already on their target shard.
    pub already_placed: usize,
    /// Total documents across the fleet.
    pub total: usize,
}

/// Knobs for [`execute`].
#[derive(Debug, Clone)]
pub struct RebalanceOptions {
    /// Virtual nodes per shard (must match the routers' `--vnodes`).
    pub vnodes: usize,
    /// Journal path; defaults to [`JOURNAL_FILE`] inside the first
    /// destination directory.
    pub journal: Option<PathBuf>,
    /// Fault injection: abort (as a crash would) immediately after the
    /// Nth destination commit, before the source release. Testing only.
    pub crash_after_commit: Option<usize>,
}

impl RebalanceOptions {
    /// Defaults matching the router's ring geometry.
    pub fn new(vnodes: usize) -> RebalanceOptions {
        RebalanceOptions {
            vnodes,
            journal: None,
            crash_after_commit: None,
        }
    }

    fn journal_path(&self, to: &[PathBuf]) -> PathBuf {
        self.journal
            .clone()
            .unwrap_or_else(|| to[0].join(JOURNAL_FILE))
    }
}

/// Read a shard's manifest, treating a missing manifest as an empty
/// corpus (a freshly-created destination shard that has never held a
/// document).
fn read_members(dir: &Path) -> Result<Vec<DocumentEntry>> {
    if !manifest::manifest_path(dir).exists() {
        if !dir.is_dir() {
            return Err(CorpusError::Io {
                path: dir.display().to_string(),
                details: "shard corpus directory does not exist".to_string(),
            });
        }
        return Ok(Vec::new());
    }
    manifest::read(dir).map(|(entries, _)| entries)
}

/// Compute the minimal move set from the fleet's current on-disk state
/// to the target layout `to` (ring of `to.len()` shards, `vnodes`
/// virtual nodes). `from` lists shard directories of the old layout;
/// directories appearing in both are read once. The plan is computed
/// purely from manifests — it is safe to call on a fleet mid-rebalance
/// (documents already committed to their destination come back as
/// `committed` moves needing only the source release).
pub fn plan(from: &[PathBuf], to: &[PathBuf], vnodes: usize) -> Result<RebalancePlan> {
    if to.is_empty() {
        return Err(CorpusError::Manifest {
            details: "rebalance target layout has no shards".to_string(),
        });
    }
    if vnodes == 0 {
        return Err(CorpusError::Manifest {
            details: "rebalance needs at least one virtual node per shard".to_string(),
        });
    }
    // Union of directories, destination layout order first so ring
    // indices line up, each read exactly once.
    let mut dirs: Vec<PathBuf> = to.to_vec();
    for dir in from {
        if !dirs.contains(dir) {
            dirs.push(dir.clone());
        }
    }
    let mut holders: HashMap<String, Vec<(usize, DocumentEntry)>> = HashMap::new();
    for (i, dir) in dirs.iter().enumerate() {
        for entry in read_members(dir)? {
            holders
                .entry(entry.name.clone())
                .or_default()
                .push((i, entry));
        }
    }
    let ring = Ring::new(to.len(), vnodes);
    let mut moves = Vec::new();
    let mut already_placed = 0usize;
    let mut names: Vec<String> = holders.keys().cloned().collect();
    names.sort();
    for name in names {
        let held = &holders[&name];
        let dest = ring.shard_for(&name);
        let on_dest = held.iter().find(|(i, _)| *i == dest);
        let off_dest: Vec<&(usize, DocumentEntry)> =
            held.iter().filter(|(i, _)| *i != dest).collect();
        if off_dest.len() > 1 {
            return Err(CorpusError::Manifest {
                details: format!(
                    "document `{name}` is present on {} shards besides its target `{}` — \
                     cannot pick a canonical copy",
                    off_dest.len(),
                    dirs[dest].display()
                ),
            });
        }
        match (on_dest, off_dest.first()) {
            (Some(_), None) => already_placed += 1,
            (dest_copy, Some((src, entry))) => {
                if let Some((_, dest_entry)) = dest_copy {
                    if dest_entry != entry {
                        return Err(CorpusError::Manifest {
                            details: format!(
                                "document `{name}` differs between `{}` and `{}` — \
                                 refusing to reconcile diverged copies",
                                dirs[*src].display(),
                                dirs[dest].display()
                            ),
                        });
                    }
                }
                moves.push(MoveStep {
                    entry: entry.clone(),
                    src: dirs[*src].clone(),
                    dst: dirs[dest].clone(),
                    committed: dest_copy.is_some(),
                });
            }
            (None, None) => unreachable!("holders entries are non-empty"),
        }
    }
    Ok(RebalancePlan {
        to: to.to_vec(),
        vnodes,
        moves,
        already_placed,
    })
}

/// A journal left by a previous (unfinished) run, enough to decide
/// whether resuming under the current options is the *same* rebalance.
struct PriorJournal {
    vnodes: usize,
    to: Vec<PathBuf>,
    complete: bool,
}

fn parse_journal(text: &str) -> Result<PriorJournal> {
    let mut lines = text.lines();
    if lines.next() != Some(JOURNAL_HEADER) {
        return Err(CorpusError::Manifest {
            details: "unrecognized rebalance journal header".to_string(),
        });
    }
    let mut vnodes = 0usize;
    let mut to = Vec::new();
    let mut complete = false;
    for line in lines {
        let mut parts = line.splitn(2, ' ');
        match (parts.next(), parts.next()) {
            (Some("vnodes"), Some(v)) => {
                vnodes = v.parse().map_err(|_| CorpusError::Manifest {
                    details: format!("bad journal vnodes line: `{line}`"),
                })?
            }
            (Some("to"), Some(dir)) => to.push(PathBuf::from(dir)),
            (Some("complete"), None) => complete = true,
            _ => {} // move/committed/done progress lines
        }
    }
    Ok(PriorJournal {
        vnodes,
        to,
        complete,
    })
}

/// Execute (or resume) a rebalance from layout `from` to layout `to`.
///
/// Idempotent and crash-safe: re-running after an interruption at any
/// point converges on the target placement with every document held by
/// exactly one shard. Returns an error without touching anything if an
/// unfinished journal from a rebalance towards a *different* layout is
/// found at the journal path.
pub fn execute(
    from: &[PathBuf],
    to: &[PathBuf],
    opts: &RebalanceOptions,
) -> Result<RebalanceReport> {
    let the_plan = plan(from, to, opts.vnodes)?;
    let journal_path = opts.journal_path(to);
    if let Ok(text) = std::fs::read_to_string(&journal_path) {
        let prior = parse_journal(&text)?;
        if !prior.complete && (prior.vnodes != opts.vnodes || prior.to != the_plan.to) {
            return Err(CorpusError::Manifest {
                details: format!(
                    "unfinished rebalance journal at `{}` targets a different layout \
                     ({} shards, {} vnodes) — finish or remove it first",
                    journal_path.display(),
                    prior.to.len(),
                    prior.vnodes
                ),
            });
        }
    }
    // Fresh journal for this run: header, target layout, planned moves.
    let mut journal = std::fs::File::create(&journal_path).map_err(io_err(&journal_path))?;
    let mut header = format!("{JOURNAL_HEADER}\nvnodes {}\n", the_plan.vnodes);
    for dir in &the_plan.to {
        header.push_str(&format!("to {}\n", dir.display()));
    }
    for step in &the_plan.moves {
        header.push_str(&format!(
            "move {} {} {}\n",
            step.entry.name,
            step.src.display(),
            step.dst.display()
        ));
    }
    journal
        .write_all(header.as_bytes())
        .and_then(|()| journal.sync_all())
        .map_err(io_err(&journal_path))?;
    let mut log = |line: String| -> Result<()> {
        journal
            .write_all(line.as_bytes())
            .and_then(|()| journal.sync_all())
            .map_err(io_err(&journal_path))
    };

    let mut moved = Vec::new();
    for (i, step) in the_plan.moves.iter().enumerate() {
        if !step.committed {
            commit_to_destination(step)?;
        }
        log(format!("committed {}\n", step.entry.name))?;
        if opts.crash_after_commit == Some(i) {
            return Err(CorpusError::Io {
                path: journal_path.display().to_string(),
                details: format!(
                    "injected crash after committing `{}` to its destination",
                    step.entry.name
                ),
            });
        }
        release_from_source(step)?;
        log(format!("done {}\n", step.entry.name))?;
        moved.push(step.entry.name.clone());
    }
    log("complete\n".to_string())?;
    drop(journal);
    std::fs::remove_file(&journal_path).map_err(io_err(&journal_path))?;
    if let Some(parent) = journal_path.parent() {
        manifest::fsync_dir(parent).map_err(io_err(parent))?;
    }
    Ok(RebalanceReport {
        moved,
        already_placed: the_plan.already_placed,
        total: the_plan.total(),
    })
}

/// Copy the snapshot into the destination corpus directory, verify it,
/// and commit it to the destination manifest. Idempotent: a re-run
/// finding the document already in the destination manifest is a no-op
/// at the planning layer (`committed: true`).
fn commit_to_destination(step: &MoveStep) -> Result<()> {
    let src_path = step.src.join(&step.entry.file);
    let dst_path = step.dst.join(&step.entry.file);
    let (entries, generation) = if manifest::manifest_path(&step.dst).exists() {
        manifest::read(&step.dst)?
    } else {
        (Vec::new(), 0)
    };
    // The destination may hold the snapshot file without the manifest
    // entry only as our own `.rebalance` leftover; a foreign file under
    // the same name belongs to some other document and must not be
    // overwritten.
    if entries.iter().any(|e| e.file == step.entry.file) {
        return Err(CorpusError::Manifest {
            details: format!(
                "destination `{}` already uses snapshot file `{}` for another document",
                step.dst.display(),
                step.entry.file
            ),
        });
    }
    let bytes = std::fs::read(&src_path).map_err(io_err(&src_path))?;
    let sum = snapshot::checksum64(&bytes);
    let tmp = step.dst.join(format!("{}.rebalance", step.entry.file));
    {
        let mut file = std::fs::File::create(&tmp).map_err(io_err(&tmp))?;
        file.write_all(&bytes)
            .and_then(|()| file.sync_all())
            .map_err(io_err(&tmp))?;
    }
    // Verify what actually landed on the destination's disk, not what
    // we think we wrote: re-read, checksum, and parse the header.
    let landed = std::fs::read(&tmp).map_err(io_err(&tmp))?;
    if snapshot::checksum64(&landed) != sum {
        return Err(CorpusError::Manifest {
            details: format!(
                "copied snapshot `{}` fails checksum verification on the destination",
                tmp.display()
            ),
        });
    }
    let info = snapshot::read_info_path(&tmp).map_err(CorpusError::Core)?;
    if info.n != step.entry.n || info.k != step.entry.k || info.layout != step.entry.layout {
        return Err(CorpusError::Manifest {
            details: format!(
                "copied snapshot `{}` geometry (n = {}, k = {}, {:?}) disagrees with the \
                 manifest entry (n = {}, k = {}, {:?})",
                tmp.display(),
                info.n,
                info.k,
                info.layout,
                step.entry.n,
                step.entry.k,
                step.entry.layout
            ),
        });
    }
    std::fs::rename(&tmp, &dst_path).map_err(io_err(&dst_path))?;
    manifest::fsync_dir(&step.dst).map_err(io_err(&step.dst))?;
    let mut entries = entries;
    entries.push(step.entry.clone());
    manifest::write(&step.dst, &entries, generation + 1)
}

/// Remove the document from the source manifest and delete its source
/// snapshot. Runs only after the destination commit is durable, so the
/// document is never without an owner; tolerates a re-run that finds
/// the source already released.
fn release_from_source(step: &MoveStep) -> Result<()> {
    let (mut entries, generation) = manifest::read(&step.src)?;
    if let Some(pos) = entries.iter().position(|e| e.name == step.entry.name) {
        entries.remove(pos);
        manifest::write(&step.src, &entries, generation + 1)?;
    }
    let src_path = step.src.join(&step.entry.file);
    match std::fs::remove_file(&src_path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(io_err(&src_path)(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use sigstr_core::{CountsLayout, Model, Query, Sequence};
    use sigstr_corpus::Corpus;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sigstr-rebalance-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn doc(seed: u64, n: usize) -> Sequence {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let symbols: Vec<u8> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2) as u8
            })
            .collect();
        Sequence::from_symbols(symbols, 2).unwrap()
    }

    const NAMES: [&str; 8] = [
        "doc-a", "doc-b", "doc-c", "doc-d", "doc-e", "doc-f", "doc-g", "doc-h",
    ];
    const VNODES: usize = 64;

    /// Ring-partition NAMES over two shard dirs; create an empty third.
    fn build_fleet(tag: &str) -> (Vec<PathBuf>, Vec<PathBuf>) {
        let root = temp_dir(tag);
        let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("shard{i}"))).collect();
        let old_ring = Ring::new(2, VNODES);
        let mut corpora: Vec<Corpus> = dirs
            .iter()
            .map(|d| {
                std::fs::create_dir_all(d).unwrap();
                Corpus::create(d).unwrap()
            })
            .collect();
        for (i, name) in NAMES.iter().enumerate() {
            corpora[old_ring.shard_for(name)]
                .add_document(
                    name,
                    &doc(i as u64 + 1, 256),
                    Model::uniform(2).unwrap(),
                    CountsLayout::Flat,
                )
                .unwrap();
        }
        (dirs[..2].to_vec(), dirs)
    }

    fn names_in(dir: &Path) -> Vec<String> {
        read_members(dir)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect()
    }

    fn assert_exactly_one_owner(dirs: &[PathBuf]) {
        let mut seen: HashMap<String, usize> = HashMap::new();
        for dir in dirs {
            for name in names_in(dir) {
                *seen.entry(name).or_default() += 1;
            }
        }
        assert_eq!(seen.len(), NAMES.len(), "no document lost");
        for (name, count) in seen {
            assert_eq!(count, 1, "`{name}` must live on exactly one shard");
        }
    }

    #[test]
    fn growing_the_ring_plans_moves_only_onto_the_new_shard() {
        let (from, all) = build_fleet("plan-grow");
        let plan = plan(&from, &all, VNODES).unwrap();
        assert!(!plan.moves.is_empty(), "growing must move something");
        assert!(
            plan.moves.len() < NAMES.len(),
            "growing must not move everything"
        );
        assert_eq!(plan.total(), NAMES.len());
        for step in &plan.moves {
            assert_eq!(
                step.dst, all[2],
                "consistent hashing moves documents only onto the new shard"
            );
            assert!(!step.committed);
        }
        std::fs::remove_dir_all(all[0].parent().unwrap()).ok();
    }

    #[test]
    fn execute_converges_and_is_idempotent() {
        let (from, all) = build_fleet("execute");
        // Reference answers before the move, one per document.
        let reference: Vec<_> = from
            .iter()
            .flat_map(|d| {
                let corpus = Corpus::open(d).unwrap();
                names_in(d)
                    .into_iter()
                    .map(move |n| {
                        let answer = corpus.query(&n, &Query::mss()).unwrap();
                        (n, answer)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        let report = execute(&from, &all, &RebalanceOptions::new(VNODES)).unwrap();
        assert!(!report.moved.is_empty());
        assert_eq!(report.total, NAMES.len());
        assert_exactly_one_owner(&all);
        assert!(
            !all[0].join(JOURNAL_FILE).exists(),
            "journal removed after completion"
        );

        // Moved documents answer bit-identically from their new shard.
        let new_ring = Ring::new(3, VNODES);
        for (name, expected) in &reference {
            let owner = Corpus::open(&all[new_ring.shard_for(name)]).unwrap();
            assert_eq!(owner.query(name, &Query::mss()).unwrap(), *expected);
        }

        // Idempotent: a second run finds nothing to move.
        let again = execute(&all, &all, &RebalanceOptions::new(VNODES)).unwrap();
        assert!(again.moved.is_empty());
        assert_eq!(again.already_placed, NAMES.len());
        std::fs::remove_dir_all(all[0].parent().unwrap()).ok();
    }

    #[test]
    fn interrupted_rebalance_resumes_without_loss_or_duplication() {
        let (from, all) = build_fleet("interrupted");
        // Crash after the first destination commit: that document now
        // sits in BOTH manifests (the transition window).
        let mut opts = RebalanceOptions::new(VNODES);
        opts.crash_after_commit = Some(0);
        let err = execute(&from, &all, &opts).unwrap_err();
        assert!(err.to_string().contains("injected crash"));
        let dup: Vec<&str> = NAMES
            .iter()
            .copied()
            .filter(|n| {
                all.iter()
                    .filter(|d| names_in(d).iter().any(|m| m == n))
                    .count()
                    == 2
            })
            .collect();
        assert_eq!(dup.len(), 1, "exactly the committed document is doubled");
        assert!(
            all[0].join(JOURNAL_FILE).exists(),
            "journal survives the crash"
        );

        // Resume: the doubled document resolves to its destination and
        // the rest of the plan completes.
        let report = execute(&from, &all, &RebalanceOptions::new(VNODES)).unwrap();
        assert!(report.moved.contains(&dup[0].to_string()));
        assert_exactly_one_owner(&all);
        assert!(!all[0].join(JOURNAL_FILE).exists());
        std::fs::remove_dir_all(all[0].parent().unwrap()).ok();
    }

    #[test]
    fn a_journal_for_a_different_layout_refuses_to_resume() {
        let (from, all) = build_fleet("journal-mismatch");
        let journal = all[0].join(JOURNAL_FILE);
        std::fs::write(
            &journal,
            format!("{JOURNAL_HEADER}\nvnodes 16\nto /somewhere/else\n"),
        )
        .unwrap();
        let err = execute(&from, &all, &RebalanceOptions::new(VNODES)).unwrap_err();
        assert!(err.to_string().contains("different layout"));
        std::fs::remove_dir_all(all[0].parent().unwrap()).ok();
    }
}
