//! Deterministic fault-injection proxy for integration tests and
//! benchmarks.
//!
//! A [`FaultProxy`] sits on its own listening port and forwards TCP
//! byte streams to an upstream address, applying the current
//! [`FaultMode`] *per chunk*: the mode lives behind a shared mutex and
//! is re-read for every chunk copied, so flipping it mid-run affects
//! connections that are already established and pooled — essential for
//! "black-hole a shard mid-request" tests, where the router's existing
//! keep-alive connections must be the ones that hang.
//!
//! Connections are numbered in accept order, which makes per-connection
//! faults (`DelayConns { every }`, `ResetAfter`) deterministic: the
//! test controls exactly which connection misbehaves by controlling the
//! dial order.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// What the proxy does to upstream-bound and client-bound bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Forward everything untouched.
    Pass,
    /// Sleep `delay_ms` before each client-bound chunk, on every
    /// `every`-th accepted connection (0-indexed: connections where
    /// `index % every == 0`). `every == 1` delays all connections.
    DelayConns {
        /// Which connections are delayed (`index % every == 0`).
        every: u64,
        /// Delay applied before each client-bound chunk.
        delay_ms: u64,
    },
    /// Sever every `every`-th accepted connection (0-indexed, like
    /// [`FaultMode::DelayConns`]) after forwarding `bytes` client-bound
    /// bytes — a mid-response cut; other connections pass untouched.
    /// `every == 1` cuts all connections.
    ResetAfter {
        /// Which connections are cut (`index % every == 0`).
        every: u64,
        /// Client-bound bytes forwarded before the cut.
        bytes: u64,
    },
    /// Accept connections and read requests, but forward nothing and
    /// answer nothing: the classic unresponsive host.
    Blackhole,
    /// Close accepted connections immediately without forwarding.
    Refuse,
}

struct ProxyShared {
    upstream: SocketAddr,
    mode: Mutex<FaultMode>,
    stop: AtomicBool,
    accepted: AtomicU64,
}

/// Handle to a running proxy; dropping it does *not* stop the proxy —
/// call [`FaultProxy::stop`].
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy on an ephemeral local port forwarding to
    /// `upstream`.
    pub fn start(upstream: SocketAddr) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            mode: Mutex::new(FaultMode::Pass),
            stop: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(FaultProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's own listening address (hand this to the router as
    /// the shard address).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swap the fault mode; takes effect on the next chunk of every
    /// live connection and on all future connections.
    pub fn set_mode(&self, mode: FaultMode) {
        *self.shared.mode.lock().unwrap() = mode;
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Stop accepting and unblock live relays. Existing relay threads
    /// notice the stop flag at their next chunk boundary.
    pub fn stop(&mut self) {
        if !self.shared.stop.swap(true, Ordering::SeqCst) {
            // Self-connect to pop the blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    loop {
        let Ok((client, _)) = listener.accept() else {
            break;
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let index = shared.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        thread::spawn(move || relay(client, index, conn_shared));
    }
}

/// Per-chunk poll interval while relaying; bounds how long a relay
/// thread can outlive `stop()`.
const RELAY_POLL: Duration = Duration::from_millis(50);

fn relay(client: TcpStream, index: u64, shared: Arc<ProxyShared>) {
    if *shared.mode.lock().unwrap() == FaultMode::Refuse {
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let Ok(upstream) = TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(5)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);

    let up = {
        // Client → upstream: never delayed, but blackholed and severed.
        let (client, upstream) = (client.try_clone(), upstream.try_clone());
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            if let (Ok(client), Ok(upstream)) = (client, upstream) {
                copy_chunks(client, upstream, index, shared, Direction::ToUpstream);
            }
        })
    };
    copy_chunks(upstream, client, index, shared, Direction::ToClient);
    let _ = up.join();
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    ToUpstream,
    ToClient,
}

fn copy_chunks(
    from: TcpStream,
    to: TcpStream,
    index: u64,
    shared: Arc<ProxyShared>,
    direction: Direction,
) {
    let mut from = from;
    let mut to = to;
    let _ = from.set_read_timeout(Some(RELAY_POLL));
    let mut forwarded: u64 = 0;
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        // Re-read the mode for every chunk so mid-run flips bite.
        let mode = *shared.mode.lock().unwrap();
        match mode {
            FaultMode::Pass => {}
            FaultMode::Refuse => break,
            FaultMode::Blackhole => {
                // Swallow the chunk; keep reading so the peer's writes
                // succeed while its reads starve.
                continue;
            }
            FaultMode::DelayConns { every, delay_ms } => {
                if direction == Direction::ToClient && every > 0 && index.is_multiple_of(every) {
                    thread::sleep(Duration::from_millis(delay_ms));
                }
            }
            FaultMode::ResetAfter { every, bytes } => {
                if direction == Direction::ToClient && every > 0 && index.is_multiple_of(every) {
                    let remaining = bytes.saturating_sub(forwarded);
                    if remaining == 0 {
                        break;
                    }
                    let send = (remaining as usize).min(n);
                    let ok = to.write_all(&buf[..send]).is_ok();
                    forwarded += send as u64;
                    if !ok || forwarded >= bytes {
                        break;
                    }
                    continue;
                }
            }
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        forwarded += n as u64;
    }
    // Sever both directions so the peer sees EOF promptly rather than a
    // half-open socket.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot upstream echo server: accepts, reads one line, writes a
    /// fixed HTTP response per accepted connection.
    fn upstream(count: usize) -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            for _ in 0..count {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    let _ = stream.read(&mut buf);
                    let _ = stream.write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
                    );
                });
            }
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr) -> std::io::Result<String> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n")?;
        let mut out = String::new();
        stream.read_to_string(&mut out)?;
        Ok(out)
    }

    #[test]
    fn pass_mode_forwards_and_blackhole_starves() {
        let (up_addr, up) = upstream(8);
        let mut proxy = FaultProxy::start(up_addr).unwrap();

        let response = roundtrip(proxy.addr()).unwrap();
        assert!(
            response.ends_with("hello"),
            "unexpected relay output: {response}"
        );

        proxy.set_mode(FaultMode::Blackhole);
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 64];
        let starved = match stream.read(&mut buf) {
            Ok(0) => true, // proxy shut down the relay without forwarding
            Ok(_) => false,
            Err(e) => {
                matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                )
            }
        };
        assert!(starved, "blackhole forwarded data");

        proxy.set_mode(FaultMode::Pass);
        let response = roundtrip(proxy.addr()).unwrap();
        assert!(response.ends_with("hello"));
        assert!(proxy.accepted() >= 3);
        proxy.stop();
        drop(up);
    }

    #[test]
    fn reset_after_severs_mid_response() {
        let (up_addr, _up) = upstream(2);
        let mut proxy = FaultProxy::start(up_addr).unwrap();
        proxy.set_mode(FaultMode::ResetAfter {
            every: 2,
            bytes: 10,
        });
        let out = roundtrip(proxy.addr()).unwrap_or_default();
        assert!(
            out.len() <= 10,
            "forwarded {} bytes past the cut: {out:?}",
            out.len()
        );
        // Connection 1 (odd index) is spared.
        let out = roundtrip(proxy.addr()).unwrap();
        assert!(out.ends_with("hello"), "spared connection was cut: {out:?}");
        proxy.stop();
    }

    #[test]
    fn delay_conns_slows_only_matching_connections() {
        let (up_addr, _up) = upstream(4);
        let mut proxy = FaultProxy::start(up_addr).unwrap();
        proxy.set_mode(FaultMode::DelayConns {
            every: 2,
            delay_ms: 150,
        });

        // Connection 0: delayed.
        let start = std::time::Instant::now();
        roundtrip(proxy.addr()).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(140),
            "conn 0 was not delayed"
        );

        // Connection 1: fast path.
        let start = std::time::Instant::now();
        roundtrip(proxy.addr()).unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(140),
            "conn 1 was delayed"
        );
        proxy.stop();
    }

    #[test]
    fn refuse_closes_without_forwarding() {
        let (up_addr, _up) = upstream(1);
        let mut proxy = FaultProxy::start(up_addr).unwrap();
        proxy.set_mode(FaultMode::Refuse);
        let out = roundtrip(proxy.addr()).unwrap_or_default();
        assert!(out.is_empty(), "refused connection still produced: {out:?}");
        proxy.stop();
    }
}
