//! Per-shard health state machine.
//!
//! Each shard is `Healthy`, `HalfOpen` or `Down`. The router only
//! sends data traffic to shards that are *routable* (not `Down`); the
//! background checker probes `/healthz` and drives recovery:
//!
//! ```text
//!            probe/data failure (threshold)          probe success
//!   Healthy ───────────────────────────────▶ Down ───────────────▶ HalfOpen
//!      ▲                                      ▲                        │
//!      │  probe success ×2, or data success   │  any failure           │
//!      └──────────────────────────────────────┴────────────────────────┘
//! ```
//!
//! `Down` shards are probed on an exponential backoff (base doubling up
//! to a cap) so a dead host costs a few probes per backoff period, not
//! a connect timeout per request. Each wait is **jittered** into
//! `[backoff/2, backoff]` with a per-shard deterministic PRNG: when a
//! whole fleet goes down together (a switch reboot, a correlated
//! crash), shards whose schedules would otherwise march in lockstep
//! desynchronize, so their rejoin probes — and the reconnection load
//! they impose — spread out instead of arriving as a thundering herd.
//! `HalfOpen` admits data traffic again but trips back to `Down` on the
//! *first* failure — one bad request, not `failure_threshold` of them,
//! because the shard has not yet re-earned trust.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A shard's position in the circuit-breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Taking traffic; failures are tolerated up to a threshold.
    Healthy,
    /// Recovering: taking traffic, but one failure trips it back down.
    HalfOpen,
    /// Not routable; probed on a backoff schedule.
    Down,
}

impl State {
    /// Numeric code exported on `/metrics` (`sigstr_router_shard_state`).
    pub fn code(self) -> u64 {
        match self {
            State::Healthy => 2,
            State::HalfOpen => 1,
            State::Down => 0,
        }
    }
}

#[derive(Debug)]
struct HealthInner {
    state: State,
    /// Consecutive data-path failures while `Healthy`.
    consecutive_failures: u32,
    /// Consecutive probe successes while recovering.
    probe_successes: u32,
    /// Current probe backoff while `Down`.
    backoff: Duration,
    /// Earliest instant the next probe should run.
    next_probe: Instant,
    /// xorshift64 state for backoff jitter (never zero).
    rng: u64,
}

impl HealthInner {
    /// Next jitter draw in `[0, 1)`.
    fn jitter01(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Tunables for the state machine; owned by `RouterConfig`.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Probe cadence for shards that are not `Down`.
    pub probe_interval: Duration,
    /// Data-path failures in a row that take a `Healthy` shard `Down`.
    pub failure_threshold: u32,
    /// First backoff step after going `Down`.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

/// One shard's health: the state machine plus its probe schedule.
#[derive(Debug)]
pub struct Health {
    policy: HealthPolicy,
    inner: Mutex<HealthInner>,
}

impl Health {
    /// New shards start `Down` and are probed immediately: traffic is
    /// admitted only after the first successful probe, so a router
    /// booted against a half-started fleet degrades instead of timing
    /// out on every request. `seed` keys the backoff jitter — give each
    /// shard a distinct value (e.g. a hash of its address) so shards
    /// that go down together do not get probed in lockstep.
    pub fn new(policy: HealthPolicy, now: Instant, seed: u64) -> Health {
        // splitmix64 scramble: nearby seeds (0, 1, 2, ...) must yield
        // uncorrelated first draws, or lockstep survives the jitter.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Health {
            policy,
            inner: Mutex::new(HealthInner {
                state: State::Down,
                consecutive_failures: 0,
                probe_successes: 0,
                backoff: policy.backoff_base,
                next_probe: now,
                // xorshift64 has a fixed point at zero; force a bit on.
                rng: z | 1,
            }),
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.inner.lock().unwrap().state
    }

    /// Whether data traffic may be sent to this shard.
    pub fn routable(&self) -> bool {
        self.state() != State::Down
    }

    /// Whether the checker should probe this shard now.
    pub fn probe_due(&self, now: Instant) -> bool {
        now >= self.inner.lock().unwrap().next_probe
    }

    /// Record a successful `/healthz` probe. Returns the new state.
    pub fn record_probe_success(&self, now: Instant) -> State {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            State::Down => {
                inner.state = State::HalfOpen;
                inner.probe_successes = 1;
            }
            State::HalfOpen => {
                inner.probe_successes += 1;
                if inner.probe_successes >= 2 {
                    inner.state = State::Healthy;
                }
            }
            State::Healthy => {}
        }
        inner.consecutive_failures = 0;
        inner.backoff = self.policy.backoff_base;
        inner.next_probe = now + self.policy.probe_interval;
        inner.state
    }

    /// Record a failed `/healthz` probe. Returns the new state.
    pub fn record_probe_failure(&self, now: Instant) -> State {
        let mut inner = self.inner.lock().unwrap();
        self.trip_down(&mut inner, now);
        inner.state
    }

    /// Record a successful data-path request.
    pub fn record_data_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = 0;
        // A real request succeeding is stronger evidence than a probe:
        // promote HalfOpen straight to Healthy.
        if inner.state == State::HalfOpen {
            inner.state = State::Healthy;
        }
    }

    /// Record a failed data-path request (connect/read error, not an
    /// HTTP error status). Returns the new state.
    pub fn record_data_failure(&self, now: Instant) -> State {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            State::HalfOpen => self.trip_down(&mut inner, now),
            State::Healthy => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.policy.failure_threshold {
                    self.trip_down(&mut inner, now);
                }
            }
            State::Down => {}
        }
        inner.state
    }

    fn trip_down(&self, inner: &mut HealthInner, now: Instant) {
        let backoff = if inner.state == State::Down {
            // Already down: double the backoff for the *next* probe.
            (inner.backoff * 2).min(self.policy.backoff_max)
        } else {
            self.policy.backoff_base
        };
        inner.state = State::Down;
        inner.consecutive_failures = 0;
        inner.probe_successes = 0;
        inner.backoff = backoff;
        // Jitter the wait into [backoff/2, backoff]: subtracting keeps
        // the cap a hard ceiling, halving keeps the exponential shape.
        let slack = backoff.mul_f64(0.5 * inner.jitter01());
        inner.next_probe = now + backoff - slack;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            probe_interval: Duration::from_millis(200),
            failure_threshold: 3,
            backoff_base: Duration::from_millis(250),
            backoff_max: Duration::from_secs(4),
        }
    }

    #[test]
    fn recovery_needs_two_probes_or_one_data_success() {
        let now = Instant::now();
        let health = Health::new(policy(), now, 7);
        assert_eq!(health.state(), State::Down);
        assert!(health.probe_due(now), "new shards are probed immediately");

        assert_eq!(health.record_probe_success(now), State::HalfOpen);
        assert!(health.routable(), "half-open shards take traffic");
        assert_eq!(health.record_probe_success(now), State::Healthy);

        // Alternative path: one probe, then a data success.
        let h2 = Health::new(policy(), now, 7);
        h2.record_probe_success(now);
        h2.record_data_success();
        assert_eq!(h2.state(), State::Healthy);
    }

    #[test]
    fn healthy_tolerates_failures_up_to_the_threshold() {
        let now = Instant::now();
        let health = Health::new(policy(), now, 7);
        health.record_probe_success(now);
        health.record_probe_success(now);

        assert_eq!(health.record_data_failure(now), State::Healthy);
        assert_eq!(health.record_data_failure(now), State::Healthy);
        // A success resets the streak.
        health.record_data_success();
        assert_eq!(health.record_data_failure(now), State::Healthy);
        assert_eq!(health.record_data_failure(now), State::Healthy);
        assert_eq!(health.record_data_failure(now), State::Down);
    }

    #[test]
    fn half_open_trips_on_the_first_failure() {
        let now = Instant::now();
        let health = Health::new(policy(), now, 7);
        health.record_probe_success(now);
        assert_eq!(health.state(), State::HalfOpen);
        assert_eq!(health.record_data_failure(now), State::Down);
    }

    #[test]
    fn probe_backoff_doubles_up_to_the_cap() {
        let now = Instant::now();
        let health = Health::new(policy(), now, 7);
        // Recover first: a brand-new shard is already Down, and failing
        // while Down doubles instead of starting at the base.
        health.record_probe_success(now);
        health.record_probe_failure(now);
        // Jittered wait lives in [base/2, base] = [125 ms, 250 ms].
        assert!(!health.probe_due(now + Duration::from_millis(124)));
        assert!(health.probe_due(now + Duration::from_millis(250)));

        // Repeated failures keep doubling: 250 → 500 → 1000 → ... →
        // capped at 4000, so the jittered wait sits in [2000, 4000] ms.
        for _ in 0..10 {
            health.record_probe_failure(now);
        }
        assert!(!health.probe_due(now + Duration::from_millis(1999)));
        assert!(health.probe_due(now + Duration::from_millis(4000)));

        // Recovery resets the backoff (the probe interval itself is not
        // jittered — only down-shard waits are).
        health.record_probe_success(now);
        assert!(health.probe_due(now + Duration::from_millis(200)));
    }

    /// The thundering-herd defence: two shards tripping Down at the
    /// same instant must not come due at the same instant.
    #[test]
    fn distinct_seeds_desynchronize_probe_schedules() {
        let now = Instant::now();
        let a = Health::new(policy(), now, 1);
        let b = Health::new(policy(), now, 2);
        for h in [&a, &b] {
            h.record_probe_success(now);
            h.record_probe_failure(now);
        }
        let first_due = |h: &Health| {
            (0..=250)
                .find(|&ms| h.probe_due(now + Duration::from_millis(ms)))
                .expect("due within the full backoff")
        };
        let (due_a, due_b) = (first_due(&a), first_due(&b));
        assert!((125..=250).contains(&due_a));
        assert!((125..=250).contains(&due_b));
        assert_ne!(due_a, due_b, "schedules must spread out");

        // Deterministic: the same seed replays the same schedule.
        let a2 = Health::new(policy(), now, 1);
        a2.record_probe_success(now);
        a2.record_probe_failure(now);
        assert_eq!(first_due(&a2), due_a);
    }
}
