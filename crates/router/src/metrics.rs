//! Router-side metrics, appended to the generic HTTP metrics on
//! `/metrics`.
//!
//! Everything is lock-free atomics so the data path never blocks on
//! observability. Latency histograms are the shared
//! [`sigstr_obs::hist::Histogram`] — the same type (and therefore the
//! same bucket bounds) the shard servers use, so shard-side and
//! router-side histograms line up in dashboards.

use std::sync::atomic::{AtomicU64, Ordering};

pub use sigstr_obs::hist::{Histogram, LATENCY_BUCKETS_US};

/// Per-shard counters; one instance lives in each `ShardRuntime`.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Health probes attempted.
    pub probes: AtomicU64,
    /// Health probes that failed.
    pub probe_failures: AtomicU64,
    /// Data-path calls attempted (each retry/hedge attempt counts).
    pub calls: AtomicU64,
    /// Data-path attempts that failed with a transport error.
    pub errors: AtomicU64,
    /// Latency of winning data-path attempts.
    pub latency: Histogram,
}

/// Router-wide counters.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Attempts re-issued after a transport failure.
    pub retries: AtomicU64,
    /// Hedge attempts launched after the latency trigger.
    pub hedges: AtomicU64,
    /// Hedge attempts that produced the winning response.
    pub hedge_wins: AtomicU64,
    /// Responses served with `"degraded": true`.
    pub degraded_responses: AtomicU64,
    /// Document directory rebuilds (placement-generation changes,
    /// shard recoveries, and `410 Gone` re-routes all trigger one).
    pub directory_refreshes: AtomicU64,
    /// Requests re-routed after a shard answered `410 Gone` (the
    /// document moved during a live rebalance).
    pub moved_rerouted: AtomicU64,
    /// Live-document appends routed to their owning shard.
    pub appends_routed: AtomicU64,
    /// Watch registrations/removals routed to their owning shard.
    pub watch_registers: AtomicU64,
    /// Long-poll watch requests forwarded (counted when they resolve).
    pub watch_polls: AtomicU64,
    /// Alerts delivered through this router (in append responses and
    /// long-poll batches).
    pub alerts_delivered: AtomicU64,
    /// End-to-end latency of full fan-outs (merged routes).
    pub fanout_latency: Histogram,
}

impl RouterMetrics {
    /// Append the router block to an already-rendered HTTP metrics page.
    /// `shards` pairs each shard's address with its state code and
    /// counters, in shard-index order.
    pub fn render(&self, out: &mut String, shards: &[(String, u64, &ShardCounters)]) {
        out.push_str("# TYPE sigstr_router_shard_up gauge\n");
        for (addr, state, _) in shards {
            let up = u64::from(*state != 0);
            out.push_str(&format!(
                "sigstr_router_shard_up{{shard=\"{addr}\"}} {up}\n"
            ));
        }
        out.push_str("# TYPE sigstr_router_shard_state gauge\n");
        for (addr, state, _) in shards {
            out.push_str(&format!(
                "sigstr_router_shard_state{{shard=\"{addr}\"}} {state}\n"
            ));
        }
        for (name, pick) in [
            ("sigstr_router_shard_probes_total", 0usize),
            ("sigstr_router_shard_probe_failures_total", 1),
            ("sigstr_router_shard_calls_total", 2),
            ("sigstr_router_shard_errors_total", 3),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (addr, _, counters) in shards {
                let value = match pick {
                    0 => counters.probes.load(Ordering::Relaxed),
                    1 => counters.probe_failures.load(Ordering::Relaxed),
                    2 => counters.calls.load(Ordering::Relaxed),
                    _ => counters.errors.load(Ordering::Relaxed),
                };
                out.push_str(&format!("{name}{{shard=\"{addr}\"}} {value}\n"));
            }
        }
        out.push_str("# TYPE sigstr_router_shard_latency_us histogram\n");
        for (addr, _, counters) in shards {
            counters.latency.render(
                out,
                "sigstr_router_shard_latency_us",
                &format!("shard=\"{addr}\""),
            );
        }
        for (name, value) in [
            (
                "sigstr_router_retries_total",
                self.retries.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_hedges_total",
                self.hedges.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_hedge_wins_total",
                self.hedge_wins.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_degraded_responses_total",
                self.degraded_responses.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_directory_refreshes_total",
                self.directory_refreshes.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_moved_rerouted_total",
                self.moved_rerouted.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_appends_routed_total",
                self.appends_routed.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_watch_registers_total",
                self.watch_registers.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_watch_polls_total",
                self.watch_polls.load(Ordering::Relaxed),
            ),
            (
                "sigstr_router_alerts_delivered_total",
                self.alerts_delivered.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        out.push_str("# TYPE sigstr_router_fanout_latency_us histogram\n");
        self.fanout_latency
            .render(out, "sigstr_router_fanout_latency_us", "");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_series_with_shard_labels() {
        let metrics = RouterMetrics::default();
        let counters = ShardCounters::default();
        counters.probes.fetch_add(3, Ordering::Relaxed);
        counters.probe_failures.fetch_add(1, Ordering::Relaxed);
        counters.calls.fetch_add(10, Ordering::Relaxed);
        counters.errors.fetch_add(2, Ordering::Relaxed);
        counters.latency.observe_us(400);
        metrics.retries.fetch_add(2, Ordering::Relaxed);
        metrics.hedges.fetch_add(5, Ordering::Relaxed);
        metrics.hedge_wins.fetch_add(4, Ordering::Relaxed);
        metrics.degraded_responses.fetch_add(1, Ordering::Relaxed);
        metrics.directory_refreshes.fetch_add(6, Ordering::Relaxed);
        metrics.moved_rerouted.fetch_add(7, Ordering::Relaxed);
        metrics.appends_routed.fetch_add(8, Ordering::Relaxed);
        metrics.watch_registers.fetch_add(9, Ordering::Relaxed);
        metrics.watch_polls.fetch_add(10, Ordering::Relaxed);
        metrics.alerts_delivered.fetch_add(11, Ordering::Relaxed);
        metrics.fanout_latency.observe_us(1_500);

        let mut out = String::new();
        metrics.render(&mut out, &[("127.0.0.1:9001".to_string(), 2, &counters)]);

        for line in [
            "sigstr_router_shard_up{shard=\"127.0.0.1:9001\"} 1",
            "sigstr_router_shard_state{shard=\"127.0.0.1:9001\"} 2",
            "sigstr_router_shard_probes_total{shard=\"127.0.0.1:9001\"} 3",
            "sigstr_router_shard_probe_failures_total{shard=\"127.0.0.1:9001\"} 1",
            "sigstr_router_shard_calls_total{shard=\"127.0.0.1:9001\"} 10",
            "sigstr_router_shard_errors_total{shard=\"127.0.0.1:9001\"} 2",
            "sigstr_router_shard_latency_us_bucket{shard=\"127.0.0.1:9001\",le=\"500\"} 1",
            "sigstr_router_shard_latency_us_count{shard=\"127.0.0.1:9001\"} 1",
            "sigstr_router_retries_total 2",
            "sigstr_router_hedges_total 5",
            "sigstr_router_hedge_wins_total 4",
            "sigstr_router_degraded_responses_total 1",
            "sigstr_router_directory_refreshes_total 6",
            "sigstr_router_moved_rerouted_total 7",
            "sigstr_router_appends_routed_total 8",
            "sigstr_router_watch_registers_total 9",
            "sigstr_router_watch_polls_total 10",
            "sigstr_router_alerts_delivered_total 11",
            "sigstr_router_fanout_latency_us_bucket{le=\"5000\"} 1",
            "sigstr_router_fanout_latency_us_count 1",
        ] {
            assert!(out.contains(line), "missing `{line}` in:\n{out}");
        }
    }

    #[test]
    fn router_histograms_share_the_server_buckets() {
        assert_eq!(
            LATENCY_BUCKETS_US,
            sigstr_server::metrics::LATENCY_BUCKETS_US
        );
    }
}
