//! Routing fidelity: answers served through the scatter-gather router
//! over real shard servers must be **bit-identical** (full struct
//! equality, `f64` compared by bits) to the answers one big corpus
//! holding every document would produce.
//!
//! The global document order contract: documents are globally indexed
//! by the lexicographic rank of their name, so the reference corpus
//! ingests documents in sorted-name order.

use std::path::PathBuf;
use std::time::Duration;

use sigstr_core::{CountsLayout, Model, Query, Sequence};
use sigstr_corpus::{Corpus, DocHit};
use sigstr_router::hash::Ring;
use sigstr_router::{HedgePolicy, RouterConfig, RouterServer};
use sigstr_server::client::ClientConn;
use sigstr_server::json::Json;
use sigstr_server::wire;
use sigstr_server::{Server, ServerConfig, ServiceHandle};

const SHARDS: usize = 2;
const VNODES: usize = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-router-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize, k: usize) -> Sequence {
    let mut x = seed | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % k as u64) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

/// The test fleet's document set: names, content seeds, alphabet sizes
/// and index layouts all vary. Names are chosen so the 2-shard ring
/// puts documents on both shards (asserted in `build`).
fn spec() -> Vec<(&'static str, u64, usize, usize, CountsLayout)> {
    vec![
        ("bin-a", 11, 600, 2, CountsLayout::Flat),
        ("bin-b", 12, 400, 2, CountsLayout::Blocked),
        ("tri-c", 13, 500, 3, CountsLayout::Blocked),
        ("tri-d", 14, 450, 3, CountsLayout::Flat),
        ("quad-e", 15, 520, 4, CountsLayout::Blocked),
        ("bin-f", 16, 380, 2, CountsLayout::Flat),
    ]
}

/// Build the sharded corpora (ring-partitioned) and the single
/// reference corpus (every document, sorted-name ingest order).
/// Returns the per-shard directories and the reference directory.
fn build(tag: &str) -> (Vec<PathBuf>, PathBuf) {
    let ring = Ring::new(SHARDS, VNODES);
    let mut spec = spec();
    spec.sort_by_key(|&(name, ..)| name);

    let shard_dirs: Vec<PathBuf> = (0..SHARDS)
        .map(|s| temp_dir(&format!("{tag}-s{s}")))
        .collect();
    let reference_dir = temp_dir(&format!("{tag}-ref"));
    let mut shards: Vec<Corpus> = shard_dirs
        .iter()
        .map(|d| Corpus::create(d).unwrap())
        .collect();
    let mut reference = Corpus::create(&reference_dir).unwrap();

    for &(name, seed, n, k, layout) in &spec {
        let sequence = doc(seed, n, k);
        let model = Model::uniform(k).unwrap();
        let owner = ring.shard_for(name);
        shards[owner]
            .add_document(name, &sequence, model.clone(), layout)
            .unwrap();
        reference
            .add_document(name, &sequence, model, layout)
            .unwrap();
    }
    for (s, corpus) in shards.iter().enumerate() {
        assert!(
            !corpus.is_empty(),
            "shard {s} got no documents — pick different names"
        );
    }
    (shard_dirs, reference_dir)
}

fn boot_shard(dir: &PathBuf) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let corpus = Corpus::open(dir).unwrap();
    let server = Server::bind(
        corpus,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().unwrap();
    });
    (addr, handle, join)
}

fn router_config(shards: Vec<String>) -> RouterConfig {
    let mut config = RouterConfig::new(shards);
    config.service.addr = "127.0.0.1:0".into();
    config.service.threads = 2;
    config.vnodes = VNODES;
    config.probe_interval = Duration::from_millis(50);
    config.probe_timeout = Duration::from_millis(500);
    config.hedge = HedgePolicy::Disabled;
    // Low-alpha merged sweeps pull multi-megabyte hit lists off each
    // shard; give them room so fidelity (not the deadline) is under test.
    config.deadline = Duration::from_secs(10);
    config
}

fn boot_router(config: RouterConfig) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let router = RouterServer::bind(config).unwrap();
    let addr = router.local_addr().to_string();
    let handle = router.handle();
    let join = std::thread::spawn(move || {
        router.run().unwrap();
    });
    (addr, handle, join)
}

fn get(addr: &str, target: &str) -> (u16, Json) {
    let mut conn = ClientConn::connect(addr).unwrap();
    let response = conn.request("GET", target, None).unwrap();
    let body = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
    (response.status, body)
}

fn post(addr: &str, target: &str, body: &str) -> (u16, Json) {
    let mut conn = ClientConn::connect(addr).unwrap();
    let response = conn.request("POST", target, Some(body)).unwrap();
    let body = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
    (response.status, body)
}

fn decode_hits(body: &Json) -> Vec<DocHit> {
    body.get("hits")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|h| wire::hit_from_json(h).unwrap())
        .collect()
}

/// Full-precision hit-list equality: same order, same documents, same
/// spans, chi-square equal to the bit.
fn assert_hits_identical(routed: &[DocHit], reference: &[DocHit], label: &str) {
    assert_eq!(routed.len(), reference.len(), "{label}: hit count");
    for (i, (a, b)) in routed.iter().zip(reference).enumerate() {
        assert_eq!(
            a.doc, b.doc,
            "{label}: hit {i} doc index ({} vs {})",
            a.name, b.name
        );
        assert_eq!(a.name, b.name, "{label}: hit {i} document name");
        assert_eq!(a.item.start, b.item.start, "{label}: hit {i} start");
        assert_eq!(a.item.end, b.item.end, "{label}: hit {i} end");
        assert_eq!(
            a.item.chi_square.to_bits(),
            b.item.chi_square.to_bits(),
            "{label}: hit {i} chi-square bits"
        );
    }
}

fn assert_not_degraded(body: &Json, label: &str) {
    assert_eq!(
        body.get("degraded").and_then(Json::as_bool),
        Some(false),
        "{label}: degraded"
    );
    assert_eq!(
        body.get("unreachable")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(0),
        "{label}: unreachable list"
    );
}

#[test]
fn merged_routes_are_bit_identical_to_a_single_corpus() {
    let (shard_dirs, reference_dir) = build("merged");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();
    let (router_addr, router_handle, router_join) = boot_router(router_config(
        booted.iter().map(|(a, ..)| a.clone()).collect(),
    ));

    // Top-t across a sweep of t values, including t larger than the
    // total hit count.
    for t in [1, 3, 10, 100] {
        let (status, body) = get(&router_addr, &format!("/v1/merged/top?t={t}"));
        assert_eq!(status, 200, "top?t={t}");
        assert_not_degraded(&body, &format!("top?t={t}"));
        assert_eq!(body.get("t").and_then(Json::as_usize), Some(t));
        let expected = reference.top_t_merged(t).unwrap();
        assert_hits_identical(&decode_hits(&body), &expected, &format!("top?t={t}"));
    }

    // Threshold at several significance levels.
    for alpha in [4.5, 8.0, 12.0] {
        let (status, body) = get(&router_addr, &format!("/v1/merged/threshold?alpha={alpha}"));
        assert_eq!(status, 200, "threshold?alpha={alpha}");
        assert_not_degraded(&body, &format!("threshold?alpha={alpha}"));
        let expected = reference.above_threshold_merged(alpha).unwrap();
        assert_eq!(
            body.get("count").and_then(Json::as_usize),
            Some(expected.len()),
            "threshold?alpha={alpha}: count"
        );
        assert_hits_identical(
            &decode_hits(&body),
            &expected,
            &format!("threshold?alpha={alpha}"),
        );
    }

    // Parameter validation mirrors the single server.
    let (status, _) = get(&router_addr, "/v1/merged/top?t=banana");
    assert_eq!(status, 400);
    let (status, _) = get(&router_addr, "/v1/merged/threshold?alpha=inf");
    assert_eq!(status, 400);

    router_handle.shutdown();
    router_join.join().unwrap();
    for (_, handle, join) in booted {
        handle.shutdown();
        join.join().unwrap();
    }
}

#[test]
fn query_and_batch_are_bit_identical_to_a_single_corpus() {
    let (shard_dirs, reference_dir) = build("query");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();
    let (router_addr, router_handle, router_join) = boot_router(router_config(
        booted.iter().map(|(a, ..)| a.clone()).collect(),
    ));

    // Single-document queries: every document, every query family.
    let queries = [
        Query::mss(),
        Query::top_t(4),
        Query::above_threshold(3.0),
        Query::mss_min_length(3),
    ];
    for &(name, ..) in &spec() {
        for query in &queries {
            let request = Json::Obj(vec![
                ("doc".into(), Json::Str(name.into())),
                ("query".into(), wire::query_to_json(query)),
            ])
            .encode()
            .unwrap();
            let (status, body) = post(&router_addr, "/v1/query", &request);
            assert_eq!(status, 200, "query {name}");
            assert_eq!(body.get("doc").and_then(Json::as_str), Some(name));
            let routed = wire::answer_from_json(body.get("answer").unwrap()).unwrap();
            let expected = reference.query(name, query).unwrap();
            assert_eq!(routed, expected, "query {name}: full struct");
            for (a, b) in routed.items().iter().zip(expected.items()) {
                assert_eq!(
                    a.chi_square.to_bits(),
                    b.chi_square.to_bits(),
                    "query {name}: bits"
                );
            }
        }
    }

    // A batch spanning every shard, reassembled in request order.
    let jobs: Vec<Json> = spec()
        .iter()
        .rev() // deliberately not in sorted order
        .map(|&(name, ..)| {
            Json::Obj(vec![
                ("doc".into(), Json::Str(name.into())),
                ("query".into(), wire::query_to_json(&Query::top_t(3))),
            ])
        })
        .collect();
    let request = Json::Obj(vec![("jobs".into(), Json::Arr(jobs))])
        .encode()
        .unwrap();
    let (status, body) = post(&router_addr, "/v1/batch", &request);
    assert_eq!(status, 200, "batch");
    assert_not_degraded(&body, "batch");
    let results = body.get("results").and_then(Json::as_array).unwrap();
    let spec_rev: Vec<_> = spec().into_iter().rev().collect();
    assert_eq!(results.len(), spec_rev.len());
    for (result, &(name, ..)) in results.iter().zip(&spec_rev) {
        assert_eq!(
            result.get("doc").and_then(Json::as_str),
            Some(name),
            "batch slot order"
        );
        let routed = wire::answer_from_json(result.get("answer").unwrap()).unwrap();
        let expected = reference.query(name, &Query::top_t(3)).unwrap();
        assert_eq!(routed, expected, "batch {name}: full struct");
    }

    // Malformed batch jobs fail the whole request, exactly like a
    // single server.
    let (status, body) = post(
        &router_addr,
        "/v1/batch",
        r#"{"jobs":[{"doc":"bin-a","query":{"kind":"nope"}}]}"#,
    );
    assert_eq!(status, 400);
    assert!(body
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("job 0"));

    // Unknown document: routed by the ring, answered 404 by whichever
    // shard owns that slice of the ring — passed through verbatim.
    let (status, body) = post(
        &router_addr,
        "/v1/query",
        r#"{"doc":"no-such-doc","query":{"kind":"mss"}}"#,
    );
    assert_eq!(status, 404);
    assert!(body.get("error").is_some());

    // The documents route serves the merged manifest in global order.
    let (status, body) = get(&router_addr, "/v1/documents");
    assert_eq!(status, 200);
    assert_not_degraded(&body, "documents");
    let listed: Vec<&str> = body
        .get("documents")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|d| d.get("name").and_then(Json::as_str).unwrap())
        .collect();
    let mut expected_names: Vec<&str> = spec().iter().map(|&(name, ..)| name).collect();
    expected_names.sort_unstable();
    assert_eq!(listed, expected_names);

    // Router health and metrics reflect the healthy fleet and the
    // traffic it just served.
    let (status, body) = get(&router_addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(body.get("shards").and_then(Json::as_usize), Some(SHARDS));
    assert_eq!(body.get("healthy").and_then(Json::as_usize), Some(SHARDS));

    let mut conn = ClientConn::connect(&router_addr).unwrap();
    let metrics = conn.request("GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let text = std::str::from_utf8(&metrics.body).unwrap();
    for (shard_addr, ..) in &booted {
        assert!(
            text.contains(&format!(
                "sigstr_router_shard_up{{shard=\"{shard_addr}\"}} 1"
            )),
            "missing shard_up for {shard_addr} in:\n{text}"
        );
        assert!(text.contains(&format!(
            "sigstr_router_shard_calls_total{{shard=\"{shard_addr}\"}}"
        )));
        assert!(text.contains(&format!(
            "sigstr_router_shard_latency_us_count{{shard=\"{shard_addr}\"}}"
        )));
    }
    for series in [
        "sigstr_router_retries_total",
        "sigstr_router_hedges_total",
        "sigstr_router_hedge_wins_total",
        "sigstr_router_degraded_responses_total 0",
        "sigstr_router_fanout_latency_us_bucket",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }

    router_handle.shutdown();
    router_join.join().unwrap();
    for (_, handle, join) in booted {
        handle.shutdown();
        join.join().unwrap();
    }
}
