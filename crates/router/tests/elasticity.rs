//! Live fleet elasticity: growing a serving fleet with `rebalance`
//! while routers keep answering — every request served, answers
//! bit-identical to a single corpus before, during and after the move,
//! and an interrupted rebalance resumable without loss or duplication.
//!
//! The fleet starts with every document placed by the two-shard ring
//! on shards 0 and 1; shard 2 is an empty corpus. The drill grows the
//! layout to all three shards under sustained query load from two
//! independent routers.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use sigstr_core::{Answer, CountsLayout, Model, Query, Sequence};
use sigstr_corpus::{Corpus, DocHit};
use sigstr_router::hash::Ring;
use sigstr_router::rebalance::{self, RebalanceOptions, JOURNAL_FILE};
use sigstr_router::{HedgePolicy, RouterConfig, RouterServer};
use sigstr_server::client::ClientConn;
use sigstr_server::json::Json;
use sigstr_server::wire;
use sigstr_server::{Server, ServerConfig, ServiceHandle};

/// Shards holding documents before the grow.
const OLD_SHARDS: usize = 2;
/// Shards after the grow (the last one starts empty).
const NEW_SHARDS: usize = 3;
const VNODES: usize = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-elastic-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize, k: usize) -> Sequence {
    let mut x = seed | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % k as u64) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

/// The drill's document set. Names are chosen so the two-shard ring
/// populates both old shards AND the three-shard ring moves at least
/// one document onto the new shard (both asserted in `build`).
fn spec() -> Vec<(&'static str, u64, usize, usize, CountsLayout)> {
    vec![
        ("bin-a", 11, 600, 2, CountsLayout::Flat),
        ("bin-b", 12, 400, 2, CountsLayout::Blocked),
        ("tri-c", 13, 500, 3, CountsLayout::Blocked),
        ("tri-d", 14, 450, 3, CountsLayout::Flat),
        ("quad-e", 15, 520, 4, CountsLayout::Blocked),
        ("bin-f", 16, 380, 2, CountsLayout::Flat),
        ("tri-g", 17, 420, 3, CountsLayout::Flat),
        ("quad-h", 18, 360, 4, CountsLayout::Blocked),
    ]
}

/// Build the pre-grow fleet: documents ring-partitioned over the first
/// two shard directories, a third empty corpus, and the single
/// reference corpus (every document, sorted-name ingest order).
fn build(tag: &str) -> (Vec<PathBuf>, PathBuf) {
    let old_ring = Ring::new(OLD_SHARDS, VNODES);
    let new_ring = Ring::new(NEW_SHARDS, VNODES);
    let mut spec = spec();
    spec.sort_by_key(|&(name, ..)| name);

    let shard_dirs: Vec<PathBuf> = (0..NEW_SHARDS)
        .map(|s| temp_dir(&format!("{tag}-s{s}")))
        .collect();
    let reference_dir = temp_dir(&format!("{tag}-ref"));
    let mut shards: Vec<Corpus> = shard_dirs
        .iter()
        .map(|d| Corpus::create(d).unwrap())
        .collect();
    let mut reference = Corpus::create(&reference_dir).unwrap();

    for &(name, seed, n, k, layout) in &spec {
        let sequence = doc(seed, n, k);
        let model = Model::uniform(k).unwrap();
        let owner = old_ring.shard_for(name);
        shards[owner]
            .add_document(name, &sequence, model.clone(), layout)
            .unwrap();
        reference
            .add_document(name, &sequence, model, layout)
            .unwrap();
    }
    for (s, corpus) in shards.iter().take(OLD_SHARDS).enumerate() {
        assert!(
            !corpus.is_empty(),
            "old shard {s} got no documents — pick different names"
        );
    }
    assert!(
        spec.iter().any(|&(name, ..)| new_ring.shard_for(name) == 2),
        "growing the ring moves nothing — pick different names"
    );
    (shard_dirs, reference_dir)
}

fn boot_shard(dir: &PathBuf) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let corpus = Corpus::open(dir).unwrap();
    let server = Server::bind(
        corpus,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().unwrap();
    });
    (addr, handle, join)
}

fn router_config(shards: Vec<String>) -> RouterConfig {
    let mut config = RouterConfig::new(shards);
    config.service.addr = "127.0.0.1:0".into();
    config.service.threads = 2;
    config.vnodes = VNODES;
    config.probe_interval = Duration::from_millis(50);
    // Generous relative to debug-build cold engine builds: a probe
    // queued behind a first-touch query must not time out and mark a
    // healthy shard down.
    config.probe_timeout = Duration::from_secs(2);
    config.hedge = HedgePolicy::Disabled;
    config.deadline = Duration::from_secs(10);
    config
}

fn boot_router(config: RouterConfig) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let router = RouterServer::bind(config).unwrap();
    let addr = router.local_addr().to_string();
    let handle = router.handle();
    let join = std::thread::spawn(move || {
        router.run().unwrap();
    });
    (addr, handle, join)
}

fn try_request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Json)> {
    let mut conn = ClientConn::connect(addr)?;
    let response = conn.request(method, target, body)?;
    let text = std::str::from_utf8(&response.body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let json = Json::decode(text.trim())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok((response.status, json))
}

/// Issue a request, retrying transient transport errors (never HTTP
/// statuses — those are the drill's subject).
fn request(addr: &str, method: &str, target: &str, body: Option<&str>) -> (u16, Json) {
    let mut last = None;
    for _ in 0..5 {
        match try_request(addr, method, target, body) {
            Ok(response) => return response,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    panic!("{method} {target} on {addr} kept failing: {last:?}");
}

fn query_body(name: &str, query: &Query) -> String {
    Json::Obj(vec![
        ("doc".into(), Json::Str(name.into())),
        ("query".into(), wire::query_to_json(query)),
    ])
    .encode()
    .unwrap()
}

fn decode_hits(body: &Json) -> Vec<DocHit> {
    body.get("hits")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|h| wire::hit_from_json(h).unwrap())
        .collect()
}

fn assert_hits_identical(routed: &[DocHit], reference: &[DocHit], label: &str) {
    assert_eq!(routed.len(), reference.len(), "{label}: hit count");
    for (i, (a, b)) in routed.iter().zip(reference).enumerate() {
        assert_eq!(a.doc, b.doc, "{label}: hit {i} doc index");
        assert_eq!(a.name, b.name, "{label}: hit {i} document name");
        assert_eq!(a.item.start, b.item.start, "{label}: hit {i} start");
        assert_eq!(a.item.end, b.item.end, "{label}: hit {i} end");
        assert_eq!(
            a.item.chi_square.to_bits(),
            b.item.chi_square.to_bits(),
            "{label}: hit {i} chi-square bits"
        );
    }
}

fn assert_answer_identical(routed: &Answer, reference: &Answer, label: &str) {
    assert_eq!(routed, reference, "{label}: full struct");
    for (a, b) in routed.items().iter().zip(reference.items()) {
        assert_eq!(
            a.chi_square.to_bits(),
            b.chi_square.to_bits(),
            "{label}: chi-square bits"
        );
    }
}

fn names_in(dir: &PathBuf) -> Vec<String> {
    Corpus::open(dir)
        .unwrap()
        .entries()
        .iter()
        .map(|e| e.name.clone())
        .collect()
}

fn shutdown_all(booted: Vec<(String, ServiceHandle, std::thread::JoinHandle<()>)>) {
    for (_, handle, join) in booted {
        handle.shutdown();
        join.join().unwrap();
    }
}

/// The router drill: grow 2 shards to 3 while two independent routers
/// serve sustained merged + single-document load. Every request must
/// succeed with answers bit-identical to the single reference corpus —
/// before, during and after the move — and both routers must converge
/// on the same post-move placement without restart.
#[test]
fn live_rebalance_under_load_serves_every_request_bit_identically() {
    let (shard_dirs, reference_dir) = build("drill");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();
    let addrs: Vec<String> = booted.iter().map(|(a, ..)| a.clone()).collect();
    let routers: Vec<_> = (0..2)
        .map(|_| boot_router(router_config(addrs.clone())))
        .collect();
    let router_addrs: Vec<String> = routers.iter().map(|(a, ..)| a.clone()).collect();

    // Ground truth, computed once up front.
    let expected_top = reference.top_t_merged(5).unwrap();
    let names: Vec<&str> = spec().iter().map(|&(name, ..)| name).collect();
    let per_doc: Vec<(String, String, Answer)> = names
        .iter()
        .map(|&name| {
            let query = Query::top_t(3);
            (
                name.to_string(),
                query_body(name, &query),
                reference.query(name, &query).unwrap(),
            )
        })
        .collect();

    let stop = AtomicBool::new(false);
    let served: Vec<std::sync::atomic::AtomicU64> = router_addrs
        .iter()
        .map(|_| std::sync::atomic::AtomicU64::new(0))
        .collect();

    std::thread::scope(|scope| {
        // One sustained load generator per router: merged top-t plus a
        // rotating single-document query, every answer checked to the
        // bit against the reference corpus.
        for (r, router_addr) in router_addrs.iter().enumerate() {
            let stop = &stop;
            let expected_top = &expected_top;
            let per_doc = &per_doc;
            let served = &served[r];
            scope.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (status, body) = request(router_addr, "GET", "/v1/merged/top?t=5", None);
                    assert_eq!(status, 200, "router {r}: merged status");
                    assert_eq!(
                        body.get("degraded").and_then(Json::as_bool),
                        Some(false),
                        "router {r}: merged degraded"
                    );
                    assert_hits_identical(
                        &decode_hits(&body),
                        expected_top,
                        &format!("router {r}: merged"),
                    );

                    let (name, request_body, expected) = &per_doc[i % per_doc.len()];
                    i += 1;
                    let (status, body) =
                        request(router_addr, "POST", "/v1/query", Some(request_body));
                    assert_eq!(
                        status,
                        200,
                        "router {r}: query {name}: body {:?}",
                        body.encode()
                    );
                    let routed = wire::answer_from_json(body.get("answer").unwrap()).unwrap();
                    assert_answer_identical(
                        &routed,
                        expected,
                        &format!("router {r}: query {name}"),
                    );
                    served.fetch_add(2, Ordering::Relaxed);
                }
            });
        }

        // Load runs against the old placement first...
        std::thread::sleep(Duration::from_millis(150));
        // ...then the fleet grows underneath it.
        let report = rebalance::execute(
            &shard_dirs[..OLD_SHARDS],
            &shard_dirs,
            &RebalanceOptions::new(VNODES),
        )
        .unwrap();
        assert!(!report.moved.is_empty(), "the grow moved nothing");
        assert_eq!(report.total, names.len());
        // ...and keeps running against the new placement.
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    for (r, count) in served.iter().enumerate() {
        assert!(
            count.load(Ordering::Relaxed) >= 10,
            "router {r} served too few requests for a meaningful drill"
        );
    }

    // Post-move placement on disk: every document in exactly one shard
    // directory, and exactly where the new ring says.
    let new_ring = Ring::new(NEW_SHARDS, VNODES);
    let holders: Vec<Vec<String>> = shard_dirs.iter().map(names_in).collect();
    for name in &names {
        let holding: Vec<usize> = (0..NEW_SHARDS)
            .filter(|&s| holders[s].iter().any(|n| n == name))
            .collect();
        assert_eq!(
            holding,
            vec![new_ring.shard_for(name)],
            "placement of {name}"
        );
    }
    assert!(
        !holders[2].is_empty(),
        "the new shard ended the drill empty"
    );

    // Both routers converged on the same directory: identical merged
    // answers and every document still queryable, including the moved
    // ones, from either router.
    for router_addr in &router_addrs {
        let (status, body) = request(router_addr, "GET", "/v1/merged/top?t=5", None);
        assert_eq!(status, 200);
        assert_hits_identical(&decode_hits(&body), &expected_top, "post-move merged");
        for (name, request_body, expected) in &per_doc {
            let (status, body) = request(router_addr, "POST", "/v1/query", Some(request_body));
            assert_eq!(status, 200, "post-move query {name}");
            let routed = wire::answer_from_json(body.get("answer").unwrap()).unwrap();
            assert_answer_identical(&routed, expected, &format!("post-move query {name}"));
        }
    }

    shutdown_all(routers);
    shutdown_all(booted);
}

/// A rebalance killed between the destination commit and the source
/// release leaves one document in both manifests. The fleet must stay
/// consistent — no duplicate hits in merged answers, the document
/// served — and a plain re-run must converge.
#[test]
fn interrupted_rebalance_stays_consistent_and_resumes() {
    let (shard_dirs, reference_dir) = build("crash");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();
    let addrs: Vec<String> = booted.iter().map(|(a, ..)| a.clone()).collect();
    let (router_addr, router_handle, router_join) = boot_router(router_config(addrs));

    // Crash after the first move's destination commit: that document
    // is now in two manifests, with bit-identical snapshots.
    let mut crashing = RebalanceOptions::new(VNODES);
    crashing.crash_after_commit = Some(0);
    let err = rebalance::execute(&shard_dirs[..OLD_SHARDS], &shard_dirs, &crashing).unwrap_err();
    assert!(
        err.to_string().contains("injected crash"),
        "unexpected error: {err}"
    );
    assert!(
        shard_dirs[0].join(JOURNAL_FILE).exists(),
        "the interrupted run must leave its journal behind"
    );
    let holders: Vec<Vec<String>> = shard_dirs.iter().map(names_in).collect();
    let doubled: Vec<&str> = spec()
        .iter()
        .map(|&(name, ..)| name)
        .filter(|name| {
            holders
                .iter()
                .filter(|h| h.iter().any(|n| n == name))
                .count()
                == 2
        })
        .collect();
    assert_eq!(doubled.len(), 1, "exactly one document is mid-move");
    let doubled = doubled[0];

    // During the window: merged answers carry no duplicates, the
    // mid-move document answers identically, and the directory lists
    // it once.
    let expected_top = reference.top_t_merged(10).unwrap();
    let (status, body) = request(&router_addr, "GET", "/v1/merged/top?t=10", None);
    assert_eq!(status, 200);
    assert_hits_identical(&decode_hits(&body), &expected_top, "mid-move merged");
    let query = Query::top_t(3);
    let (status, body) = request(
        &router_addr,
        "POST",
        "/v1/query",
        Some(&query_body(doubled, &query)),
    );
    assert_eq!(status, 200, "mid-move query {doubled}");
    let routed = wire::answer_from_json(body.get("answer").unwrap()).unwrap();
    assert_answer_identical(
        &routed,
        &reference.query(doubled, &query).unwrap(),
        &format!("mid-move query {doubled}"),
    );
    let (status, body) = request(&router_addr, "GET", "/v1/documents", None);
    assert_eq!(status, 200);
    let listed = body
        .get("documents")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter(|d| d.get("name").and_then(Json::as_str) == Some(doubled))
        .count();
    assert_eq!(listed, 1, "directory lists the mid-move document once");

    // Re-running with the same target converges: the journal is
    // consumed, every document lands in exactly one directory, and the
    // fleet still answers bit-identically.
    let report = rebalance::execute(
        &shard_dirs[..OLD_SHARDS],
        &shard_dirs,
        &RebalanceOptions::new(VNODES),
    )
    .unwrap();
    assert!(!shard_dirs[0].join(JOURNAL_FILE).exists());
    let new_ring = Ring::new(NEW_SHARDS, VNODES);
    let holders: Vec<Vec<String>> = shard_dirs.iter().map(names_in).collect();
    for &(name, ..) in &spec() {
        let holding: Vec<usize> = (0..NEW_SHARDS)
            .filter(|&s| holders[s].iter().any(|n| n == name))
            .collect();
        assert_eq!(
            holding,
            vec![new_ring.shard_for(name)],
            "placement of {name}"
        );
    }
    assert!(
        report.moved.iter().any(|n| n == doubled),
        "the resume finished the half-done move"
    );
    let (status, body) = request(&router_addr, "GET", "/v1/merged/top?t=10", None);
    assert_eq!(status, 200);
    assert_hits_identical(&decode_hits(&body), &expected_top, "post-resume merged");

    router_handle.shutdown();
    router_join.join().unwrap();
    shutdown_all(booted);
}

/// The `410 Gone` protocol end to end: with probes effectively
/// disabled, a router's directory stays stale across a rebalance, so
/// its first query for a moved document goes to the old owner — which
/// answers 410 — and the router must refresh and re-route within the
/// same request instead of surfacing the miss.
#[test]
fn stale_routers_reroute_moved_documents_after_410() {
    let (shard_dirs, reference_dir) = build("stale");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();
    let addrs: Vec<String> = booted.iter().map(|(a, ..)| a.clone()).collect();
    let mut config = router_config(addrs);
    // One boot-time probe round builds the directory; no probe after
    // that will refresh it during the test window.
    config.probe_interval = Duration::from_secs(600);
    let (router_addr, router_handle, router_join) = boot_router(config);

    // A document that stays put proves the fleet is up without warming
    // any soon-to-move engine on its old shard (a warm engine would
    // serve the stale answer instead of 410 — correct, but not the
    // path under test).
    let new_ring = Ring::new(NEW_SHARDS, VNODES);
    let names: Vec<&str> = spec().iter().map(|&(name, ..)| name).collect();
    let old_ring = Ring::new(OLD_SHARDS, VNODES);
    let staying = *names
        .iter()
        .find(|name| old_ring.shard_for(name) == new_ring.shard_for(name))
        .expect("some document stays put");
    let query = Query::top_t(3);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = request(
            &router_addr,
            "POST",
            "/v1/query",
            Some(&query_body(staying, &query)),
        );
        if status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never became routable (last status {status})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let report = rebalance::execute(
        &shard_dirs[..OLD_SHARDS],
        &shard_dirs,
        &RebalanceOptions::new(VNODES),
    )
    .unwrap();
    assert!(!report.moved.is_empty());

    // Every moved document must be served on the first try: the old
    // owner's 410 is absorbed by an in-request directory refresh.
    for name in &report.moved {
        let (status, body) = request(
            &router_addr,
            "POST",
            "/v1/query",
            Some(&query_body(name, &query)),
        );
        assert_eq!(status, 200, "moved document {name} not re-routed");
        let routed = wire::answer_from_json(body.get("answer").unwrap()).unwrap();
        assert_answer_identical(
            &routed,
            &reference.query(name, &query).unwrap(),
            &format!("re-routed query {name}"),
        );
    }

    // The re-route path actually fired and was counted.
    let mut conn = ClientConn::connect(&router_addr).unwrap();
    let metrics = conn.request("GET", "/metrics", None).unwrap();
    let text = std::str::from_utf8(&metrics.body).unwrap();
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
    };
    assert!(
        counter("sigstr_router_moved_rerouted_total") >= 1,
        "no 410 re-route was recorded"
    );
    assert!(counter("sigstr_router_directory_refreshes_total") >= 1);

    router_handle.shutdown();
    router_join.join().unwrap();
    shutdown_all(booted);
}
