//! Fleet-wide trace propagation: the ID minted (or adopted) at the
//! router edge must be the one every shard logs its spans under —
//! across retries, hedges, and a `410 Gone` re-route — and the
//! router's `/debug/traces?join=1` must stitch the shard-side traces
//! onto its own. Plus the metric-naming lint, run against the *real*
//! `/metrics` pages of a live shard and router.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sigstr_core::{CountsLayout, Model, Query, Sequence};
use sigstr_corpus::Corpus;
use sigstr_obs::{lint, TRACE_HEADER};
use sigstr_router::fault::{FaultMode, FaultProxy};
use sigstr_router::hash::Ring;
use sigstr_router::rebalance::{self, RebalanceOptions};
use sigstr_router::{HedgePolicy, RouterConfig, RouterServer};
use sigstr_server::client::{ClientConn, HttpResponse};
use sigstr_server::json::Json;
use sigstr_server::wire;
use sigstr_server::{Server, ServerConfig, ServiceHandle};

const OLD_SHARDS: usize = 2;
const NEW_SHARDS: usize = 3;
const VNODES: usize = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-router-tr-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize, k: usize) -> Sequence {
    let mut x = seed | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % k as u64) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

fn spec() -> Vec<(&'static str, u64, usize, usize, CountsLayout)> {
    vec![
        ("bin-a", 11, 600, 2, CountsLayout::Flat),
        ("bin-b", 12, 400, 2, CountsLayout::Blocked),
        ("tri-c", 13, 500, 3, CountsLayout::Blocked),
        ("tri-d", 14, 450, 3, CountsLayout::Flat),
        ("quad-e", 15, 520, 4, CountsLayout::Blocked),
        ("bin-f", 16, 380, 2, CountsLayout::Flat),
        ("tri-g", 17, 420, 3, CountsLayout::Flat),
        ("quad-h", 18, 360, 4, CountsLayout::Blocked),
    ]
}

/// Documents ring-partitioned over the first [`OLD_SHARDS`]
/// directories; [`NEW_SHARDS`] directories exist so the re-route test
/// can grow the fleet.
fn build(tag: &str) -> Vec<PathBuf> {
    let old_ring = Ring::new(OLD_SHARDS, VNODES);
    let mut spec = spec();
    spec.sort_by_key(|&(name, ..)| name);
    let shard_dirs: Vec<PathBuf> = (0..NEW_SHARDS)
        .map(|s| temp_dir(&format!("{tag}-s{s}")))
        .collect();
    let mut shards: Vec<Corpus> = shard_dirs
        .iter()
        .map(|d| Corpus::create(d).unwrap())
        .collect();
    for &(name, seed, n, k, layout) in &spec {
        shards[old_ring.shard_for(name)]
            .add_document(name, &doc(seed, n, k), Model::uniform(k).unwrap(), layout)
            .unwrap();
    }
    shard_dirs
}

fn doc_on_shard(shard: usize) -> &'static str {
    let ring = Ring::new(OLD_SHARDS, VNODES);
    spec()
        .iter()
        .map(|&(name, ..)| name)
        .find(|name| ring.shard_for(name) == shard)
        .expect("every shard owns a document")
}

fn boot_shard(dir: &PathBuf) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let corpus = Corpus::open(dir).unwrap();
    let server = Server::bind(
        corpus,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().unwrap();
    });
    (addr, handle, join)
}

fn fast_config(shards: Vec<String>) -> RouterConfig {
    let mut config = RouterConfig::new(shards);
    config.service.addr = "127.0.0.1:0".into();
    config.service.threads = 2;
    config.vnodes = VNODES;
    // Generous per-request deadline: the 410 re-route path makes two
    // sequential shard round trips inside one deadline, and these tests
    // share the machine with the rest of the workspace suite.
    config.deadline = Duration::from_secs(5);
    config.retries = 1;
    config.hedge = HedgePolicy::Disabled;
    config.probe_interval = Duration::from_millis(50);
    config.probe_timeout = Duration::from_millis(200);
    config.backoff_base = Duration::from_millis(50);
    config.backoff_max = Duration::from_millis(200);
    config
}

fn boot_router(config: RouterConfig) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let router = RouterServer::bind(config).unwrap();
    let addr = router.local_addr().to_string();
    let handle = router.handle();
    let join = std::thread::spawn(move || {
        router.run().unwrap();
    });
    (addr, handle, join)
}

fn shutdown_all(booted: Vec<(String, ServiceHandle, std::thread::JoinHandle<()>)>) {
    for (_, handle, join) in booted {
        handle.shutdown();
        join.join().unwrap();
    }
}

fn query_body(name: &str, query: &Query) -> String {
    Json::Obj(vec![
        ("doc".into(), Json::Str(name.into())),
        ("query".into(), wire::query_to_json(query)),
    ])
    .encode()
    .unwrap()
}

/// POST a query carrying a caller-injected trace ID.
fn post_traced(addr: &str, body: &str, id: &str) -> HttpResponse {
    let mut conn = ClientConn::connect(addr).unwrap();
    conn.request_with("POST", "/v1/query", Some(body), &[(TRACE_HEADER, id)])
        .unwrap()
}

/// All traces a process holds for `id` (possibly several on a shard
/// that served both a primary and a hedge attempt). A trace is sealed
/// into the recorder only *after* the response bytes flush (the write
/// span is part of it), so the caller can hold a 200 before the trace
/// is visible — poll briefly instead of racing that window.
fn traces_for(addr: &str, id: &str) -> Vec<Json> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut conn = ClientConn::connect(addr).unwrap();
        let response = conn
            .request("GET", &format!("/debug/traces?id={id}"), None)
            .unwrap();
        assert_eq!(response.status, 200);
        let traces = Json::decode(std::str::from_utf8(&response.body).unwrap().trim())
            .unwrap()
            .get("traces")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        if !traces.is_empty() || Instant::now() >= deadline {
            return traces;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn spans_named(trace: &Json, name: &str) -> Vec<Json> {
    trace
        .get("spans")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter(|s| s.get("name").and_then(Json::as_str) == Some(name))
        .cloned()
        .collect()
}

fn attr<'a>(span: &'a Json, key: &str) -> Option<&'a str> {
    span.get("attrs")
        .and_then(|a| a.get(key))
        .and_then(Json::as_str)
}

fn wait_routable(router_addr: &str, name: &str, query: &Query) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut conn = ClientConn::connect(router_addr).unwrap();
        let response = conn
            .request("POST", "/v1/query", Some(&query_body(name, query)))
            .unwrap();
        if response.status == 200 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never became routable (last status {})",
            response.status
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A severed connection forces a retry; the retry attempt must carry
/// the same edge-adopted trace ID, the router trace must show both
/// attempts, and `join=1` must stitch the shard-side trace in.
#[test]
fn trace_id_survives_retries_and_joins_shard_spans() {
    let shard_dirs = build("retry");
    let booted: Vec<_> = shard_dirs[..OLD_SHARDS].iter().map(boot_shard).collect();

    let upstream = booted[1].0.parse().unwrap();
    let mut proxy = FaultProxy::start(upstream).unwrap();
    let mut config = fast_config(vec![booted[0].0.clone(), proxy.addr().to_string()]);
    config.probe_interval = Duration::from_secs(60); // deterministic conn numbering
    config.retries = 2;
    let (router_addr, router_handle, router_join) = boot_router(config);
    assert_eq!(proxy.accepted(), 2, "probe + directory fetch");

    // Conn 2: a warm-up promotes the shard to Healthy (one transport
    // failure later won't take it down) and parks the connection in
    // the router's pool.
    let name = doc_on_shard(1);
    let mut warm = ClientConn::connect(&router_addr).unwrap();
    let warm_response = warm
        .request(
            "POST",
            "/v1/query",
            Some(&query_body(name, &Query::top_t(4))),
        )
        .unwrap();
    assert_eq!(warm_response.status, 200, "warm-up query");

    // Burn conn 3 so the next dials land on even (cut) then odd
    // (spared) indices.
    {
        let burn = std::net::TcpStream::connect(proxy.addr()).unwrap();
        for _ in 0..100 {
            if proxy.accepted() == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(proxy.accepted(), 4, "burn connection was not accepted");
        drop(burn);
    }

    // Sever even-numbered connections 20 bytes into the reply: the
    // pooled conn 2 (already past 20 bytes) dies on its next response,
    // the client's transparent reconnect dials conn 4 (cut again, and
    // the fresh socket surfaces the error), and the router's retry
    // dials conn 5, which passes.
    proxy.set_mode(FaultMode::ResetAfter {
        every: 2,
        bytes: 20,
    });

    let id = "0000000000000000000000000000beef";
    let response = post_traced(&router_addr, &query_body(name, &Query::top_t(4)), id);
    assert_eq!(response.status, 200, "query across the severed connection");
    assert_eq!(response.header(TRACE_HEADER), Some(id));

    // Router-side: one trace, with an errored attempt and a winning one.
    let router_traces = traces_for(&router_addr, id);
    assert_eq!(router_traces.len(), 1);
    let attempts = spans_named(&router_traces[0], "attempt");
    assert!(
        attempts.len() >= 2,
        "retry must leave both attempts in the trace: {attempts:?}"
    );
    assert!(attempts.iter().any(|a| attr(a, "outcome") == Some("error")));
    let winner = attempts
        .iter()
        .find(|a| attr(a, "outcome") == Some("ok"))
        .expect("a winning attempt");
    assert_eq!(attr(winner, "win"), Some("true"));

    // Shard-side: the shard that answered logs the same ID, with its
    // own scan span.
    let shard_traces = traces_for(&booted[1].0, id);
    assert!(
        !shard_traces.is_empty(),
        "the shard never saw the edge-minted trace ID"
    );
    let served = shard_traces
        .iter()
        .find(|t| t.get("status").and_then(Json::as_u64) == Some(200))
        .expect("a shard trace for the served attempt");
    assert!(!spans_named(served, "scan").is_empty());

    // join=1 stitches the shard trace under the router's.
    proxy.set_mode(FaultMode::Pass);
    let mut conn = ClientConn::connect(&router_addr).unwrap();
    let joined = conn
        .request("GET", &format!("/debug/traces?id={id}&join=1"), None)
        .unwrap();
    assert_eq!(joined.status, 200);
    let body = Json::decode(std::str::from_utf8(&joined.body).unwrap().trim()).unwrap();
    let traces = body.get("traces").and_then(Json::as_array).unwrap();
    assert_eq!(traces.len(), 1);
    let shards = traces[0].get("shards").and_then(Json::as_array);
    let shards = shards.expect("join=1 embeds a `shards` array");
    assert!(
        shards
            .iter()
            .any(|t| t.get("id").and_then(Json::as_str) == Some(id)),
        "joined shard traces must carry the edge ID"
    );

    proxy.stop();
    router_handle.shutdown();
    router_join.join().unwrap();
    shutdown_all(booted);
}

/// A hedged request shows *both* attempt spans under one trace, the
/// hedge marked as the winner, and the shard logs the same ID for
/// every attempt it served.
#[test]
fn hedged_requests_show_every_attempt_under_one_trace() {
    let shard_dirs = build("hedge");
    let booted: Vec<_> = shard_dirs[..OLD_SHARDS].iter().map(boot_shard).collect();

    let upstream = booted[1].0.parse().unwrap();
    let mut proxy = FaultProxy::start(upstream).unwrap();
    let mut config = fast_config(vec![booted[0].0.clone(), proxy.addr().to_string()]);
    config.probe_interval = Duration::from_secs(60);
    config.deadline = Duration::from_secs(2);
    config.hedge = HedgePolicy::Fixed(Duration::from_millis(100));
    let (router_addr, router_handle, router_join) = boot_router(config);

    // Delay even-numbered connections far past the hedge trigger: the
    // primary dial is slow, the hedge dials a fresh fast connection.
    proxy.set_mode(FaultMode::DelayConns {
        every: 2,
        delay_ms: 400,
    });

    let name = doc_on_shard(1);
    let id = "00000000000000000000000000005eed";
    let response = post_traced(&router_addr, &query_body(name, &Query::top_t(4)), id);
    assert_eq!(response.status, 200, "hedged query");
    assert_eq!(response.header(TRACE_HEADER), Some(id));

    let router_traces = traces_for(&router_addr, id);
    assert_eq!(router_traces.len(), 1);
    let attempts = spans_named(&router_traces[0], "attempt");
    assert!(
        attempts.len() >= 2,
        "a hedged call must show every attempt: {attempts:?}"
    );
    let hedge = attempts
        .iter()
        .find(|a| attr(a, "kind") == Some("hedge"))
        .expect("a hedge attempt span");
    assert_eq!(attr(hedge, "outcome"), Some("ok"));
    assert_eq!(attr(hedge, "win"), Some("true"));
    let primary = attempts
        .iter()
        .find(|a| attr(a, "kind") == Some("primary"))
        .expect("a primary attempt span");
    assert_eq!(attr(primary, "outcome"), Some("abandoned"));

    // The slow primary eventually lands on the shard too — every shard
    // trace for this request carries the edge ID.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let shard_traces = traces_for(&booted[1].0, id);
        if shard_traces.len() >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shard recorded {} trace(s) for the hedged request, expected 2",
            shard_traces.len()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    proxy.stop();
    router_handle.shutdown();
    router_join.join().unwrap();
    shutdown_all(booted);
}

/// A stale router re-routing after `410 Gone` keeps the same trace ID
/// end to end: the trace shows the re-route span and the *new* owner
/// logs the ID.
#[test]
fn a_410_reroute_keeps_the_edge_trace_id() {
    let shard_dirs = build("moved");
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();
    let addrs: Vec<String> = booted.iter().map(|(a, ..)| a.clone()).collect();
    let mut config = fast_config(addrs.clone());
    // One boot-time probe round builds the directory; nothing after
    // that refreshes it during the test window.
    config.probe_interval = Duration::from_secs(600);
    let (router_addr, router_handle, router_join) = boot_router(config);

    let old_ring = Ring::new(OLD_SHARDS, VNODES);
    let new_ring = Ring::new(NEW_SHARDS, VNODES);
    let staying = spec()
        .iter()
        .map(|&(name, ..)| name)
        .find(|name| old_ring.shard_for(name) == new_ring.shard_for(name))
        .expect("some document stays put");
    let query = Query::top_t(3);
    wait_routable(&router_addr, staying, &query);

    let report = rebalance::execute(
        &shard_dirs[..OLD_SHARDS],
        &shard_dirs,
        &RebalanceOptions::new(VNODES),
    )
    .unwrap();
    let moved = report.moved.first().expect("the grow moves something");

    let id = "000000000000000000000000000ab1e5";
    let response = post_traced(&router_addr, &query_body(moved, &query), id);
    assert_eq!(response.status, 200, "moved document {moved} not re-routed");
    assert_eq!(response.header(TRACE_HEADER), Some(id));

    let router_traces = traces_for(&router_addr, id);
    assert_eq!(router_traces.len(), 1);
    let reroutes = spans_named(&router_traces[0], "reroute");
    assert_eq!(reroutes.len(), 1, "the 410 re-route must leave a span");
    assert_eq!(attr(&reroutes[0], "doc"), Some(moved.as_str()));
    let new_owner = &addrs[new_ring.shard_for(moved)];
    assert_eq!(attr(&reroutes[0], "to"), Some(new_owner.as_str()));

    // The new owner logged the same ID and actually scanned.
    let owner_traces = traces_for(new_owner, id);
    let served = owner_traces
        .iter()
        .find(|t| t.get("status").and_then(Json::as_u64) == Some(200))
        .expect("the new owner never saw the trace ID");
    assert!(!spans_named(served, "scan").is_empty());

    router_handle.shutdown();
    router_join.join().unwrap();
    shutdown_all(booted);
}

/// Every metric either process exports obeys the
/// `sigstr_<subsystem>_<name>_<unit>` convention and renders as valid
/// Prometheus text exposition — checked on live `/metrics` pages, not
/// hand-built fixtures.
#[test]
fn live_metrics_pages_pass_the_naming_lint() {
    let shard_dirs = build("lint");
    let booted: Vec<_> = shard_dirs[..OLD_SHARDS].iter().map(boot_shard).collect();
    let addrs: Vec<String> = booted.iter().map(|(a, ..)| a.clone()).collect();
    let (router_addr, router_handle, router_join) = boot_router(fast_config(addrs.clone()));

    let name = doc_on_shard(0);
    wait_routable(&router_addr, name, &Query::mss());

    for addr in addrs.iter().chain([&router_addr]) {
        let mut conn = ClientConn::connect(addr).unwrap();
        let response = conn.request("GET", "/metrics", None).unwrap();
        assert_eq!(response.status, 200);
        let text = std::str::from_utf8(&response.body).unwrap();
        let violations = lint::lint_exposition(text);
        assert!(
            violations.is_empty(),
            "{addr} /metrics violates the naming convention:\n{}",
            violations.join("\n")
        );
    }

    router_handle.shutdown();
    router_join.join().unwrap();
    shutdown_all(booted);
}
