//! Fault tolerance: with the fault-injection proxy black-holing,
//! severing and delaying the path to a shard, the router must answer
//! every request within its deadline — **exactly** when it can,
//! **degraded but well-formed** when it can't — and must recover on its
//! own once the fault clears.
//!
//! Each test drives real shard servers through a [`FaultProxy`], so the
//! sockets, timeouts and retries under test are the real ones.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sigstr_core::{CountsLayout, Model, Query, Sequence};
use sigstr_corpus::{Corpus, DocHit};
use sigstr_router::fault::{FaultMode, FaultProxy};
use sigstr_router::hash::Ring;
use sigstr_router::{HedgePolicy, RouterConfig, RouterServer};
use sigstr_server::client::{ClientConn, HttpResponse};
use sigstr_server::json::Json;
use sigstr_server::wire;
use sigstr_server::{Server, ServerConfig, ServiceHandle};

const SHARDS: usize = 2;
const VNODES: usize = 64;

// ---------------------------------------------------------------------------
// Fixture: the same ring-partitioned fleet the fidelity tests use.
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-router-ft-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize, k: usize) -> Sequence {
    let mut x = seed | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % k as u64) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

fn spec() -> Vec<(&'static str, u64, usize, usize, CountsLayout)> {
    vec![
        ("bin-a", 11, 600, 2, CountsLayout::Flat),
        ("bin-b", 12, 400, 2, CountsLayout::Blocked),
        ("tri-c", 13, 500, 3, CountsLayout::Blocked),
        ("tri-d", 14, 450, 3, CountsLayout::Flat),
        ("quad-e", 15, 520, 4, CountsLayout::Blocked),
        ("bin-f", 16, 380, 2, CountsLayout::Flat),
    ]
}

/// Build ring-partitioned shard corpora plus the sorted-name reference
/// corpus. Returns `(shard_dirs, reference_dir)`.
fn build(tag: &str) -> (Vec<PathBuf>, PathBuf) {
    let ring = Ring::new(SHARDS, VNODES);
    let mut spec = spec();
    spec.sort_by_key(|&(name, ..)| name);

    let shard_dirs: Vec<PathBuf> = (0..SHARDS)
        .map(|s| temp_dir(&format!("{tag}-s{s}")))
        .collect();
    let reference_dir = temp_dir(&format!("{tag}-ref"));
    let mut shards: Vec<Corpus> = shard_dirs
        .iter()
        .map(|d| Corpus::create(d).unwrap())
        .collect();
    let mut reference = Corpus::create(&reference_dir).unwrap();

    for &(name, seed, n, k, layout) in &spec {
        let sequence = doc(seed, n, k);
        let model = Model::uniform(k).unwrap();
        let owner = ring.shard_for(name);
        shards[owner]
            .add_document(name, &sequence, model.clone(), layout)
            .unwrap();
        reference
            .add_document(name, &sequence, model, layout)
            .unwrap();
    }
    for (s, corpus) in shards.iter().enumerate() {
        assert!(
            !corpus.is_empty(),
            "shard {s} got no documents — pick different names"
        );
    }
    (shard_dirs, reference_dir)
}

/// First document name owned by `shard` under the test ring.
fn doc_on_shard(shard: usize) -> &'static str {
    let ring = Ring::new(SHARDS, VNODES);
    spec()
        .iter()
        .map(|&(name, ..)| name)
        .find(|name| ring.shard_for(name) == shard)
        .expect("every shard owns at least one document")
}

fn boot_shard_at(
    dir: &PathBuf,
    addr: &str,
) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let corpus = Corpus::open(dir).unwrap();
    let server = Server::bind(
        corpus,
        ServerConfig {
            addr: addr.into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().unwrap();
    });
    (addr, handle, join)
}

fn boot_shard(dir: &PathBuf) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    boot_shard_at(dir, "127.0.0.1:0")
}

/// Aggressive health/backoff settings so faults are detected (and
/// recovery observed) in tens of milliseconds, not seconds.
fn fast_config(shards: Vec<String>) -> RouterConfig {
    let mut config = RouterConfig::new(shards);
    config.service.addr = "127.0.0.1:0".into();
    config.service.threads = 2;
    config.vnodes = VNODES;
    config.deadline = Duration::from_millis(800);
    config.retries = 1;
    config.hedge = HedgePolicy::Disabled;
    config.probe_interval = Duration::from_millis(50);
    config.probe_timeout = Duration::from_millis(200);
    config.backoff_base = Duration::from_millis(50);
    config.backoff_max = Duration::from_millis(200);
    config
}

fn boot_router(config: RouterConfig) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let router = RouterServer::bind(config).unwrap();
    let addr = router.local_addr().to_string();
    let handle = router.handle();
    let join = std::thread::spawn(move || {
        router.run().unwrap();
    });
    (addr, handle, join)
}

fn raw_get(addr: &str, target: &str) -> HttpResponse {
    let mut conn = ClientConn::connect(addr).unwrap();
    conn.request("GET", target, None).unwrap()
}

fn get(addr: &str, target: &str) -> (u16, Json) {
    let response = raw_get(addr, target);
    let body = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
    (response.status, body)
}

fn post(addr: &str, target: &str, body: &str) -> (u16, Json) {
    let mut conn = ClientConn::connect(addr).unwrap();
    let response = conn.request("POST", target, Some(body)).unwrap();
    let body = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
    (response.status, body)
}

fn query_body(name: &str, query: &Query) -> String {
    Json::Obj(vec![
        ("doc".into(), Json::Str(name.into())),
        ("query".into(), wire::query_to_json(query)),
    ])
    .encode()
    .unwrap()
}

fn decode_hits(body: &Json) -> Vec<DocHit> {
    body.get("hits")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|h| wire::hit_from_json(h).unwrap())
        .collect()
}

fn assert_hits_identical(routed: &[DocHit], reference: &[DocHit], label: &str) {
    assert_eq!(routed.len(), reference.len(), "{label}: hit count");
    for (i, (a, b)) in routed.iter().zip(reference).enumerate() {
        assert_eq!(a.doc, b.doc, "{label}: hit {i} doc index");
        assert_eq!(a.name, b.name, "{label}: hit {i} document name");
        assert_eq!(a.item.start, b.item.start, "{label}: hit {i} start");
        assert_eq!(a.item.end, b.item.end, "{label}: hit {i} end");
        assert_eq!(
            a.item.chi_square.to_bits(),
            b.item.chi_square.to_bits(),
            "{label}: hit {i} chi-square bits"
        );
    }
}

/// Value of a single un-labelled counter line in a `/metrics` page.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric `{name}` not found in:\n{text}"))
}

fn shutdown_all(
    router: (String, ServiceHandle, std::thread::JoinHandle<()>),
    booted: Vec<(String, ServiceHandle, std::thread::JoinHandle<()>)>,
) {
    let (_, handle, join) = router;
    handle.shutdown();
    join.join().unwrap();
    for (_, handle, join) in booted {
        handle.shutdown();
        join.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// 1. Black-holed shard: bounded latency, structured degradation, recovery.
// ---------------------------------------------------------------------------

/// A shard that accepts connections but never answers is the nastiest
/// failure mode — without deadlines every request into it hangs for the
/// full read timeout. The router must (a) keep every response under the
/// deadline plus scheduling slack, (b) degrade merged routes to
/// `200 + "degraded": true`, (c) `503` single-document routes with
/// `Retry-After`, and (d) recover to bit-exact service once the shard
/// comes back — all without operator intervention.
#[test]
fn black_holed_shard_degrades_within_deadline_and_recovers() {
    let (shard_dirs, reference_dir) = build("blackhole");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();

    // Shard 1 sits behind the fault proxy; the router only knows the
    // proxy's address.
    let upstream = booted[1].0.parse().unwrap();
    let mut proxy = FaultProxy::start(upstream).unwrap();
    let proxy_addr = proxy.addr().to_string();
    let config = fast_config(vec![booted[0].0.clone(), proxy_addr.clone()]);
    let deadline = config.deadline;
    let router = boot_router(config);
    let router_addr = router.0.clone();

    // Healthy sanity check: exact answers through the proxy.
    let expected_top = reference.top_t_merged(5).unwrap();
    let (status, body) = get(&router_addr, "/v1/merged/top?t=5");
    assert_eq!(status, 200);
    assert_eq!(body.get("degraded").and_then(Json::as_bool), Some(false));
    assert_hits_identical(&decode_hits(&body), &expected_top, "healthy top");

    // Black-hole the shard: connections accepted, every byte swallowed.
    proxy.set_mode(FaultMode::Blackhole);

    // Every merged request must keep answering 200 with well-formed
    // JSON, within the deadline budget; within a few probe cycles the
    // responses must declare the degradation and name the dead shard.
    let slack = Duration::from_secs(2);
    let mut saw_degraded = false;
    for _ in 0..40 {
        let started = Instant::now();
        let (status, body) = get(&router_addr, "/v1/merged/top?t=5");
        let elapsed = started.elapsed();
        assert_eq!(status, 200, "merged top during blackhole");
        assert!(
            elapsed < deadline + slack,
            "request blocked {elapsed:?}, past the {deadline:?} deadline"
        );
        assert!(
            body.get("hits").and_then(Json::as_array).is_some(),
            "malformed degraded body"
        );
        let degraded = body.get("degraded").and_then(Json::as_bool).unwrap();
        if degraded {
            let unreachable: Vec<&str> = body
                .get("unreachable")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|j| j.as_str().unwrap())
                .collect();
            assert_eq!(unreachable, vec![proxy_addr.as_str()], "unreachable list");
            // The reachable shard's documents still come back exact.
            let routed = decode_hits(&body);
            assert!(routed
                .iter()
                .all(|h| Ring::new(SHARDS, VNODES).shard_for(&h.name) == 0));
            saw_degraded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        saw_degraded,
        "router never declared the black-holed shard degraded"
    );

    // A batch spanning both shards: request order preserved, live
    // shard's jobs answered, dead shard's jobs carry structured
    // per-slot errors — still one 200, still within the deadline.
    let jobs: Vec<Json> = spec()
        .iter()
        .map(|&(name, ..)| {
            Json::Obj(vec![
                ("doc".into(), Json::Str(name.into())),
                ("query".into(), wire::query_to_json(&Query::top_t(3))),
            ])
        })
        .collect();
    let request = Json::Obj(vec![("jobs".into(), Json::Arr(jobs))])
        .encode()
        .unwrap();
    let started = Instant::now();
    let (status, body) = post(&router_addr, "/v1/batch", &request);
    assert!(
        started.elapsed() < deadline + slack,
        "batch blocked past the deadline"
    );
    assert_eq!(status, 200, "degraded batch");
    assert_eq!(body.get("degraded").and_then(Json::as_bool), Some(true));
    let results = body.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), spec().len(), "batch result count");
    let ring = Ring::new(SHARDS, VNODES);
    for (result, &(name, ..)) in results.iter().zip(&spec()) {
        assert_eq!(
            result.get("doc").and_then(Json::as_str),
            Some(name),
            "batch slot order"
        );
        if ring.shard_for(name) == 0 {
            assert!(
                result.get("answer").is_some(),
                "live-shard job {name} lost its answer"
            );
        } else {
            assert_eq!(result.get("status").and_then(Json::as_usize), Some(503));
            let error = result.get("error").and_then(Json::as_str).unwrap();
            assert!(error.contains("unreachable"), "slot error: {error}");
        }
    }

    // Single-document routes cannot degrade meaningfully: the honest
    // answer is 503 + Retry-After.
    let mut conn = ClientConn::connect(&router_addr).unwrap();
    let response = conn
        .request(
            "POST",
            "/v1/query",
            Some(&query_body(doc_on_shard(1), &Query::mss())),
        )
        .unwrap();
    assert_eq!(response.status, 503, "query for a dead shard's document");
    assert_eq!(response.header("retry-after"), Some("1"));

    // Metrics tell the same story.
    let metrics = raw_get(&router_addr, "/metrics");
    let text = std::str::from_utf8(&metrics.body).unwrap();
    assert!(metric_value(text, "sigstr_router_degraded_responses_total") > 0);
    assert!(text.contains(&format!(
        "sigstr_router_shard_state{{shard=\"{proxy_addr}\"}} 0"
    )));
    assert!(text.contains(&format!(
        "sigstr_router_shard_up{{shard=\"{proxy_addr}\"}} 0"
    )));

    // Clear the fault: the prober must bring the shard back and the
    // router must converge to exact, non-degraded answers on its own.
    proxy.set_mode(FaultMode::Pass);
    let mut recovered = false;
    for _ in 0..100 {
        let (status, body) = get(&router_addr, "/v1/merged/top?t=5");
        assert_eq!(status, 200);
        if body.get("degraded").and_then(Json::as_bool) == Some(false) {
            assert_hits_identical(&decode_hits(&body), &expected_top, "recovered top");
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        recovered,
        "router never recovered after the blackhole cleared"
    );
    let (status, body) = get(&router_addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body.get("healthy").and_then(Json::as_usize), Some(SHARDS));

    proxy.stop();
    shutdown_all(router, booted);
}

// ---------------------------------------------------------------------------
// 2. A shard answering 503 gets no data traffic, and rejoins on recovery.
// ---------------------------------------------------------------------------

/// Minimal HTTP endpoint that answers `503` to everything and records
/// the request paths it saw — a shard in maintenance/drain.
struct Fake503 {
    addr: String,
    paths: Arc<Mutex<Vec<String>>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Fake503 {
    fn start() -> Fake503 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let paths = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let (t_paths, t_stop) = (Arc::clone(&paths), Arc::clone(&stop));
        let thread = std::thread::spawn(move || loop {
            let Ok((mut stream, _)) = listener.accept() else {
                break;
            };
            if t_stop.load(Ordering::SeqCst) {
                break;
            }
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let mut head = Vec::new();
            let mut buf = [0u8; 2048];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        head.extend_from_slice(&buf[..n]);
                        if head.windows(4).any(|w| w == b"\r\n\r\n") {
                            break;
                        }
                    }
                }
            }
            if let Some(line) = head.split(|&b| b == b'\r').next() {
                if let Some(path) = String::from_utf8_lossy(line).split_whitespace().nth(1) {
                    t_paths.lock().unwrap().push(path.to_string());
                }
            }
            let body = br#"{"error":"maintenance"}"#;
            let _ = stream.write_all(
                format!(
                    "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            );
            let _ = stream.write_all(body);
            let _ = stream.shutdown(Shutdown::Both);
        });
        Fake503 {
            addr,
            paths,
            stop,
            thread: Some(thread),
        }
    }

    fn stop(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(&self.addr);
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The health checker must treat a `503`-answering shard as down —
/// zero data-path requests reach it — and must resume routing once a
/// real server takes over the same address.
#[test]
fn a_503_shard_receives_no_data_traffic_and_rejoins_after_recovery() {
    let (shard_dirs, reference_dir) = build("fake503");
    let reference = Corpus::open(&reference_dir).unwrap();
    // Shard 0 is real from the start; shard 1's address is served by the
    // 503 fake.
    let booted = vec![boot_shard(&shard_dirs[0])];
    let mut fake = Fake503::start();
    let fake_addr = fake.addr.clone();

    let router = boot_router(fast_config(vec![booted[0].0.clone(), fake_addr.clone()]));
    let router_addr = router.0.clone();

    // Merged routes degrade immediately (the fake has never passed a
    // probe, so it never takes traffic).
    let (status, body) = get(&router_addr, "/v1/merged/top?t=10");
    assert_eq!(status, 200);
    assert_eq!(body.get("degraded").and_then(Json::as_bool), Some(true));
    let unreachable: Vec<&str> = body
        .get("unreachable")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|j| j.as_str().unwrap())
        .collect();
    assert_eq!(unreachable, vec![fake_addr.as_str()]);

    // A document owned by the sick shard: 503, not a wrong answer.
    let (status, _) = post(
        &router_addr,
        "/v1/query",
        &query_body(doc_on_shard(1), &Query::mss()),
    );
    assert_eq!(status, 503);

    let (status, body) = get(&router_addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body.get("healthy").and_then(Json::as_usize), Some(1));

    // The fake must have seen health probes and *nothing else*: the
    // router never routed data to a shard it knew was sick.
    {
        let paths = fake.paths.lock().unwrap();
        assert!(!paths.is_empty(), "the checker never probed the sick shard");
        assert!(
            paths.iter().all(|p| p == "/healthz"),
            "data traffic reached a sick shard: {paths:?}"
        );
    }

    // Maintenance ends: the fake stops and a real server binds the very
    // same address (std listeners set SO_REUSEADDR, so lingering
    // TIME_WAIT sockets don't block the rebind).
    fake.stop();
    let recovered_shard = boot_shard_at(&shard_dirs[1], &fake_addr);
    assert_eq!(
        recovered_shard.0, fake_addr,
        "recovery must reuse the shard's address"
    );

    // The prober must notice within a few backoff cycles…
    let mut healthy = false;
    for _ in 0..100 {
        let (_, body) = get(&router_addr, "/healthz");
        if body.get("healthy").and_then(Json::as_usize) == Some(SHARDS) {
            healthy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(healthy, "router never marked the recovered shard healthy");

    // …and full, exact service must resume: merged answers bit-identical
    // to the single reference corpus, single-doc queries served again.
    let expected = reference.top_t_merged(10).unwrap();
    let mut exact = false;
    for _ in 0..100 {
        let (status, body) = get(&router_addr, "/v1/merged/top?t=10");
        assert_eq!(status, 200);
        if body.get("degraded").and_then(Json::as_bool) == Some(false) {
            assert_hits_identical(&decode_hits(&body), &expected, "recovered merged top");
            exact = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(exact, "merged route stayed degraded after recovery");

    let name = doc_on_shard(1);
    let (status, body) = post(
        &router_addr,
        "/v1/query",
        &query_body(name, &Query::top_t(3)),
    );
    assert_eq!(status, 200, "query after recovery");
    let routed = wire::answer_from_json(body.get("answer").unwrap()).unwrap();
    assert_eq!(routed, reference.query(name, &Query::top_t(3)).unwrap());

    shutdown_all(router, booted);
    let (_, handle, join) = recovered_shard;
    handle.shutdown();
    join.join().unwrap();
}

// ---------------------------------------------------------------------------
// 3. Mid-response cut: the retry budget turns a severed reply into an
//    exact answer.
// ---------------------------------------------------------------------------

/// The proxy severs the shard's reply mid-response. The client layer's
/// one transparent reconnect is also severed, so the failure surfaces
/// to the router, whose retry budget must produce the exact answer —
/// invisible to the caller except for `retries_total` ticking up.
#[test]
fn mid_response_cut_is_retried_to_an_exact_answer() {
    let (shard_dirs, reference_dir) = build("reset");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();

    let upstream = booted[1].0.parse().unwrap();
    let mut proxy = FaultProxy::start(upstream).unwrap();
    let proxy_addr = proxy.addr().to_string();

    // Long probe interval: after the bind-time probe round the checker
    // stays quiet, so the proxy's connection numbering is fully
    // deterministic — conn 0 = initial probe, conn 1 = directory fetch.
    let mut config = fast_config(vec![booted[0].0.clone(), proxy_addr.clone()]);
    config.probe_interval = Duration::from_secs(60);
    config.retries = 2;
    let router = boot_router(config);
    let router_addr = router.0.clone();
    assert_eq!(
        proxy.accepted(),
        2,
        "expected exactly probe + directory fetch"
    );

    // Conn 2: a warm-up query promotes the shard to Healthy (so one
    // transport failure later won't take it down) and parks the
    // connection in the router's pool.
    let name = doc_on_shard(1);
    let expected = reference.query(name, &Query::top_t(4)).unwrap();
    let (status, body) = post(
        &router_addr,
        "/v1/query",
        &query_body(name, &Query::top_t(4)),
    );
    assert_eq!(status, 200, "warm-up query");
    assert_eq!(
        wire::answer_from_json(body.get("answer").unwrap()).unwrap(),
        expected
    );
    assert_eq!(
        proxy.accepted(),
        3,
        "warm-up should have dialed one data connection"
    );

    // Burn conn 3 so the next two dials land on even (cut) then odd
    // (spared) connection indices.
    {
        let burn = TcpStream::connect(proxy.addr()).unwrap();
        for _ in 0..100 {
            if proxy.accepted() == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(proxy.accepted(), 4, "burn connection was not accepted");
        drop(burn);
    }

    // Sever even-numbered connections 20 bytes into the reply: the
    // pooled conn 2 (already past 20 bytes) dies on its next response,
    // the transparent reconnect dials conn 4 (even — cut again, and a
    // fresh socket surfaces the error instead of reconnecting), and the
    // router's retry dials conn 5, which passes.
    proxy.set_mode(FaultMode::ResetAfter {
        every: 2,
        bytes: 20,
    });

    let (status, body) = post(
        &router_addr,
        "/v1/query",
        &query_body(name, &Query::top_t(4)),
    );
    assert_eq!(status, 200, "query across the severed connection");
    assert_eq!(
        wire::answer_from_json(body.get("answer").unwrap()).unwrap(),
        expected,
        "retried answer must be exact"
    );

    let metrics = raw_get(&router_addr, "/metrics");
    let text = std::str::from_utf8(&metrics.body).unwrap();
    assert!(
        metric_value(text, "sigstr_router_retries_total") >= 1,
        "the cut never reached the router's retry path:\n{text}"
    );
    assert!(text.contains(&format!(
        "sigstr_router_shard_state{{shard=\"{proxy_addr}\"}} 2"
    )));

    proxy.stop();
    shutdown_all(router, booted);
}

// ---------------------------------------------------------------------------
// 4. Hedging: a duplicate request races a slow shard and wins.
// ---------------------------------------------------------------------------

/// The proxy delays every other connection by 400 ms — far past the
/// 100 ms hedge trigger. The hedge dials a fresh (fast) connection and
/// must win the race, keeping end-to-end latency well under the delay.
#[test]
fn a_hedge_beats_a_slow_connection() {
    let (shard_dirs, reference_dir) = build("hedge");
    let reference = Corpus::open(&reference_dir).unwrap();
    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();

    let upstream = booted[1].0.parse().unwrap();
    let mut proxy = FaultProxy::start(upstream).unwrap();

    let mut config = fast_config(vec![booted[0].0.clone(), proxy.addr().to_string()]);
    config.probe_interval = Duration::from_secs(60); // deterministic conn numbering
    config.deadline = Duration::from_secs(2);
    config.hedge = HedgePolicy::Fixed(Duration::from_millis(100));
    let router = boot_router(config);
    let router_addr = router.0.clone();
    assert_eq!(
        proxy.accepted(),
        2,
        "expected exactly probe + directory fetch"
    );

    // Delay even-numbered connections by 400 ms per chunk. The first
    // data dial is conn 2 (slow); the hedge dials conn 3 (fast).
    proxy.set_mode(FaultMode::DelayConns {
        every: 2,
        delay_ms: 400,
    });

    let name = doc_on_shard(1);
    let expected = reference.query(name, &Query::top_t(4)).unwrap();
    let started = Instant::now();
    let (status, body) = post(
        &router_addr,
        "/v1/query",
        &query_body(name, &Query::top_t(4)),
    );
    let elapsed = started.elapsed();
    assert_eq!(status, 200, "hedged query");
    assert_eq!(
        wire::answer_from_json(body.get("answer").unwrap()).unwrap(),
        expected,
        "hedged answer must be exact"
    );
    assert!(
        elapsed < Duration::from_millis(390),
        "hedge did not win: {elapsed:?} (the delayed path takes 400 ms+)"
    );

    let metrics = raw_get(&router_addr, "/metrics");
    let text = std::str::from_utf8(&metrics.body).unwrap();
    assert!(
        metric_value(text, "sigstr_router_hedges_total") >= 1,
        "no hedge launched:\n{text}"
    );
    assert!(
        metric_value(text, "sigstr_router_hedge_wins_total") >= 1,
        "hedge never won:\n{text}"
    );

    proxy.stop();
    shutdown_all(router, booted);
}
