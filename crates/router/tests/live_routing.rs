//! Live-document routing: appends, watch registration, long-polls and
//! the merged `/v1/live` status must all reach the owning shard through
//! the router, with the shard's answer passed through verbatim.

use std::path::PathBuf;
use std::time::Duration;

use sigstr_core::{CountsLayout, Model, Sequence};
use sigstr_corpus::Corpus;
use sigstr_router::hash::Ring;
use sigstr_router::{HedgePolicy, RouterConfig, RouterServer};
use sigstr_server::client::ClientConn;
use sigstr_server::json::Json;
use sigstr_server::{Server, ServerConfig, ServiceHandle};

const SHARDS: usize = 2;
const VNODES: usize = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-router-live-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// First candidate name the ring assigns to `shard`.
fn name_owned_by(ring: &Ring, shard: usize, candidates: &[&'static str]) -> &'static str {
    candidates
        .iter()
        .find(|name| ring.shard_for(name) == shard)
        .copied()
        .unwrap_or_else(|| panic!("no candidate lands on shard {shard}; extend the list"))
}

fn boot_shard(dir: &PathBuf) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let corpus = Corpus::open(dir).unwrap();
    let server = Server::bind(
        corpus,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().unwrap();
    });
    (addr, handle, join)
}

fn boot_router(shards: Vec<String>) -> (String, ServiceHandle, std::thread::JoinHandle<()>) {
    let mut config = RouterConfig::new(shards);
    config.service.addr = "127.0.0.1:0".into();
    config.service.threads = 2;
    config.vnodes = VNODES;
    config.probe_interval = Duration::from_millis(50);
    config.probe_timeout = Duration::from_millis(500);
    config.hedge = HedgePolicy::Disabled;
    let router = RouterServer::bind(config).unwrap();
    let addr = router.local_addr().to_string();
    let handle = router.handle();
    let join = std::thread::spawn(move || {
        router.run().unwrap();
    });
    (addr, handle, join)
}

fn call(addr: &str, method: &str, target: &str, body: Option<&str>) -> (u16, Json) {
    let mut conn = ClientConn::connect(addr).unwrap();
    let response = conn.request(method, target, body).unwrap();
    let body = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
    (response.status, body)
}

#[test]
fn live_routes_reach_the_owning_shard() {
    let ring = Ring::new(SHARDS, VNODES);
    let candidates = [
        "live-a", "live-b", "live-c", "live-d", "live-e", "live-f", "live-g", "live-h",
    ];
    let live0 = name_owned_by(&ring, 0, &candidates);
    let live1 = name_owned_by(&ring, 1, &candidates);
    let statics = [
        "cold-a", "cold-b", "cold-c", "cold-d", "cold-e", "cold-f", "cold-g", "cold-h",
    ];

    let shard_dirs: Vec<PathBuf> = (0..SHARDS).map(|s| temp_dir(&format!("s{s}"))).collect();
    for (s, dir) in shard_dirs.iter().enumerate() {
        let mut corpus = Corpus::create(dir).unwrap();
        let static_name = name_owned_by(&ring, s, &statics);
        let symbols: Vec<u8> = (0..120u32).map(|i| ((i / 7) % 2) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        corpus
            .add_document(
                static_name,
                &seq,
                Model::uniform(2).unwrap(),
                CountsLayout::Flat,
            )
            .unwrap();
        let (live_seq, alphabet) =
            Sequence::from_text(b"abababababababababababababababab").unwrap();
        let model = Model::estimate(&live_seq).unwrap();
        let live_name = if s == 0 { live0 } else { live1 };
        corpus
            .add_live_document(live_name, &live_seq, &alphabet, model, CountsLayout::Flat)
            .unwrap();
    }

    let booted: Vec<_> = shard_dirs.iter().map(boot_shard).collect();
    let (router_addr, router_handle, router_join) =
        boot_router(booted.iter().map(|(a, ..)| a.clone()).collect());

    // Appends route to the owner whichever shard holds the document.
    for (live, expected_n) in [(live0, 36), (live1, 36)] {
        let (status, body) = call(
            &router_addr,
            "POST",
            &format!("/v1/documents/{live}/append"),
            Some(r#"{"data":"abab"}"#),
        );
        assert_eq!(status, 200, "append {live}: {body:?}");
        assert_eq!(body.get("doc").and_then(Json::as_str), Some(live));
        assert_eq!(body.get("n").and_then(Json::as_usize), Some(expected_n));
    }

    // Register a watch on shard 0's document, through the router.
    let (status, body) = call(
        &router_addr,
        "POST",
        "/v1/watch",
        Some(&format!(
            r#"{{"doc":"{live0}","window":16,"threshold":12.0,"top_t":4}}"#
        )),
    );
    assert_eq!(status, 200, "register: {body:?}");
    let watch = body.get("watch").and_then(Json::as_u64).unwrap();

    // An anomalous run alerts in the append response...
    let (status, body) = call(
        &router_addr,
        "POST",
        &format!("/v1/documents/{live0}/append"),
        Some(r#"{"data":"bbbbbbbbbbbbbbbb"}"#),
    );
    assert_eq!(status, 200);
    let appended_alerts = body.get("alerts").and_then(Json::as_array).unwrap().len();
    assert!(appended_alerts > 0, "anomaly must alert: {body:?}");

    // ...and the long-poll replays them from cursor 0.
    let (status, body) = call(
        &router_addr,
        "GET",
        &format!("/v1/watch?doc={live0}&since=0&timeout_ms=0"),
        None,
    );
    assert_eq!(status, 200, "poll: {body:?}");
    assert_eq!(
        body.get("alerts")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(appended_alerts)
    );

    // Removing the watch is forwarded; a re-removal reports false.
    let target = format!("/v1/watch?doc={live0}&watch={watch}");
    let (status, body) = call(&router_addr, "DELETE", &target, None);
    assert_eq!(status, 200);
    assert_eq!(body.get("removed").and_then(Json::as_bool), Some(true));
    let (_, body) = call(&router_addr, "DELETE", &target, None);
    assert_eq!(body.get("removed").and_then(Json::as_bool), Some(false));

    // The merged live status lists both shards' documents, name-sorted.
    let (status, body) = call(&router_addr, "GET", "/v1/live", None);
    assert_eq!(status, 200);
    assert_eq!(body.get("degraded").and_then(Json::as_bool), Some(false));
    let names: Vec<&str> = body
        .get("docs")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|d| d.get("name").and_then(Json::as_str).unwrap())
        .collect();
    let mut expected = vec![live0, live1];
    expected.sort_unstable();
    assert_eq!(names, expected);

    // Shard-side validation passes through: appending to a static
    // document is a 400, to an unknown document a 404; router-side
    // validation rejects a missing `doc` before forwarding.
    let static0 = name_owned_by(&ring, 0, &statics);
    let (status, _) = call(
        &router_addr,
        "POST",
        &format!("/v1/documents/{static0}/append"),
        Some(r#"{"data":"abab"}"#),
    );
    assert_eq!(status, 400);
    let (status, _) = call(
        &router_addr,
        "POST",
        "/v1/documents/ghost/append",
        Some(r#"{"data":"abab"}"#),
    );
    assert_eq!(status, 404);
    let (status, _) = call(&router_addr, "POST", "/v1/watch", Some(r#"{"window":4}"#));
    assert_eq!(status, 400);
    let (status, _) = call(&router_addr, "GET", "/v1/watch", None);
    assert_eq!(status, 400);

    // Method guards.
    let mut conn = ClientConn::connect(&router_addr).unwrap();
    let response = conn.request("PUT", "/v1/watch", Some("{}")).unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("GET, POST, DELETE"));
    let response = conn
        .request("GET", &format!("/v1/documents/{live0}/append"), None)
        .unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("POST"));

    // The router counted what it just routed.
    let response = conn.request("GET", "/metrics", None).unwrap();
    let text = std::str::from_utf8(&response.body).unwrap();
    let counter = |name: &str| -> u64 {
        text.lines()
            .find_map(|line| line.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("missing `{name}` in:\n{text}"))
            .parse()
            .unwrap()
    };
    assert!(counter("sigstr_router_appends_routed_total") >= 3);
    assert!(counter("sigstr_router_watch_registers_total") >= 3);
    assert!(counter("sigstr_router_watch_polls_total") >= 1);
    assert!(counter("sigstr_router_alerts_delivered_total") >= appended_alerts as u64 * 2);

    router_handle.shutdown();
    router_join.join().unwrap();
    for (_, handle, join) in booted {
        handle.shutdown();
        join.join().unwrap();
    }
}
