//! The corpus manifest: a versioned, line-oriented text file listing
//! every document snapshot in the corpus directory.
//!
//! Format (tab-separated, one document per line, `#` comments ignored):
//!
//! ```text
//! sigstr-corpus v1
//! # generation 7
//! # name  file            k  n        layout
//! chr1    chr1.snap       4  1000000  blocked
//! ```
//!
//! The manifest is the corpus's source of truth for membership and query
//! planning (`n`/`k`/layout are needed to validate queries and size the
//! cache before any snapshot is opened); the per-document geometry is
//! re-validated against the snapshot header when the document is first
//! materialized. Rewrites are atomic: the new manifest is written to a
//! temporary sibling and renamed over the old one, so a crash mid-update
//! never leaves a half-written membership list.
//!
//! Each rewrite also bumps a monotonically increasing **generation**,
//! recorded as a `# generation N` comment line so pre-generation
//! manifests (and pre-generation parsers) stay compatible. `/healthz`
//! reports the generation, which lets a routing tier notice membership
//! changes with one cheap probe instead of refetching the document
//! list.

use std::path::{Path, PathBuf};

use sigstr_core::CountsLayout;

use crate::{CorpusError, Result};

/// The manifest's file name inside a corpus directory.
pub const MANIFEST_FILE: &str = "corpus.manifest";

/// First line of every version-1 manifest.
pub const MANIFEST_HEADER: &str = "sigstr-corpus v1";

/// One document of the corpus, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentEntry {
    /// The document's unique name (see [`validate_name`]).
    pub name: String,
    /// Snapshot file name, relative to the corpus directory.
    pub file: String,
    /// Alphabet size of the stored sequence.
    pub k: usize,
    /// Length of the stored sequence.
    pub n: usize,
    /// Count-index layout stored in the snapshot.
    pub layout: CountsLayout,
}

/// Manifest path inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Manifest layouts are concrete (`flat`/`blocked`) — `auto` is a build
/// option, not a stored layout.
fn parse_layout(s: &str) -> Option<CountsLayout> {
    match CountsLayout::parse(s) {
        Some(CountsLayout::Auto) | None => None,
        concrete => concrete,
    }
}

/// Validate a document name: 1–128 characters from `[A-Za-z0-9._-]`, not
/// starting with a dot or dash (no hidden files, no flag lookalikes, no
/// path traversal — the name becomes the snapshot file stem).
pub fn validate_name(name: &str) -> Result<()> {
    let ok_len = !name.is_empty() && name.len() <= 128;
    let ok_chars = name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    let ok_start = !name.starts_with(['.', '-']);
    if ok_len && ok_chars && ok_start {
        Ok(())
    } else {
        Err(CorpusError::InvalidName {
            name: name.to_string(),
            details: "names are 1-128 chars of [A-Za-z0-9._-], not starting with `.` or `-`",
        })
    }
}

/// Validate a manifest snapshot-file field: same character rules as a
/// document name (in particular, no path separators), and never the
/// manifest itself or its rewrite temporary. The corpus joins this
/// field onto its directory and `remove_document` deletes it, so a
/// tampered manifest must not be able to point reads or deletions
/// outside the directory — or at the corpus's own metadata.
fn validate_file(lineno: usize, file: &str) -> Result<()> {
    let ok_len = !file.is_empty() && file.len() <= 140;
    let ok_chars = file
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    let ok_start = !file.starts_with(['.', '-']);
    let ok_target = !file.starts_with(MANIFEST_FILE);
    if ok_len && ok_chars && ok_start && ok_target {
        Ok(())
    } else {
        Err(CorpusError::Manifest {
            details: format!(
                "line {lineno}: snapshot file `{file}` must be a plain file name \
                 ([A-Za-z0-9._-], not starting with `.` or `-`, not the manifest)"
            ),
        })
    }
}

/// Prefix of the generation comment line.
const GENERATION_PREFIX: &str = "# generation ";

/// Serialize entries into manifest text.
pub fn render(entries: &[DocumentEntry], generation: u64) -> String {
    let mut out = String::with_capacity(64 + entries.len() * 48);
    out.push_str(MANIFEST_HEADER);
    out.push('\n');
    out.push_str(&format!("{GENERATION_PREFIX}{generation}\n"));
    for e in entries {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            e.name,
            e.file,
            e.k,
            e.n,
            e.layout.name()
        ));
    }
    out
}

/// Parse manifest text into entries, validating the header, field shapes,
/// and name uniqueness.
pub fn parse(text: &str) -> Result<Vec<DocumentEntry>> {
    let mut lines = text.lines();
    match lines.next() {
        Some(MANIFEST_HEADER) => {}
        Some(other) => {
            return Err(CorpusError::Manifest {
                details: format!("bad header line `{other}` (expected `{MANIFEST_HEADER}`)"),
            })
        }
        None => {
            return Err(CorpusError::Manifest {
                details: "empty manifest".into(),
            })
        }
    }
    let mut entries = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let err = |what: &str| CorpusError::Manifest {
            details: format!("line {}: {what} in `{line}`", lineno + 2),
        };
        if fields.len() != 5 {
            return Err(err(&format!("{} fields, expected 5", fields.len())));
        }
        validate_name(fields[0])?;
        validate_file(lineno + 2, fields[1])?;
        let k: usize = fields[2].parse().map_err(|_| err("bad alphabet size"))?;
        let n: usize = fields[3].parse().map_err(|_| err("bad sequence length"))?;
        let layout = parse_layout(fields[4]).ok_or_else(|| err("bad layout"))?;
        if entries.iter().any(|e: &DocumentEntry| e.name == fields[0]) {
            return Err(err("duplicate document name"));
        }
        // Two entries sharing one snapshot file would make
        // `remove_document` on either silently destroy the other.
        if entries.iter().any(|e: &DocumentEntry| e.file == fields[1]) {
            return Err(err("duplicate snapshot file"));
        }
        entries.push(DocumentEntry {
            name: fields[0].to_string(),
            file: fields[1].to_string(),
            k,
            n,
            layout,
        });
    }
    Ok(entries)
}

/// The generation recorded in manifest text (`0` for manifests written
/// before generations existed — the next rewrite starts counting).
pub fn parse_generation(text: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(GENERATION_PREFIX))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0)
}

/// Read and parse the manifest inside `dir`: entries plus generation.
pub fn read(dir: &Path) -> Result<(Vec<DocumentEntry>, u64)> {
    let path = manifest_path(dir);
    let text = std::fs::read_to_string(&path).map_err(|e| CorpusError::Io {
        path: path.display().to_string(),
        details: e.to_string(),
    })?;
    Ok((parse(&text)?, parse_generation(&text)))
}

/// Flush a directory's metadata to stable storage. A `rename` is atomic
/// with respect to crashes but **not durable** on its own: the updated
/// directory entry lives in the directory's own metadata, which the
/// kernel may still be holding in memory when power is lost. Callers
/// that just renamed something into `dir` fsync the directory to make
/// the rename stick.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Atomically rewrite the manifest inside `dir` (temp file + rename).
///
/// This is the crash-safety contract the corpus relies on (and that
/// `tests/manifest_crash.rs` pins): the previous manifest stays intact
/// and readable until the rename lands, so a crash at any point mid-
/// rewrite — including a torn, half-written temp file — loses at most
/// the update in progress, never the previous generation. Durability is
/// part of the contract too: the temp file is fsync'd before the rename
/// (so the rename can never publish torn data) and the directory is
/// fsync'd after it (so the rename itself survives power loss).
pub fn write(dir: &Path, entries: &[DocumentEntry], generation: u64) -> Result<()> {
    use std::io::Write;
    let path = manifest_path(dir);
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let io = |p: &Path| {
        let p = p.display().to_string();
        move |e: std::io::Error| CorpusError::Io {
            path: p,
            details: e.to_string(),
        }
    };
    let mut file = std::fs::File::create(&tmp).map_err(io(&tmp))?;
    file.write_all(render(entries, generation).as_bytes())
        .map_err(io(&tmp))?;
    file.sync_all().map_err(io(&tmp))?;
    drop(file);
    std::fs::rename(&tmp, &path).map_err(io(&path))?;
    fsync_dir(dir).map_err(io(dir))?;
    Ok(())
}

/// Remove a leftover rewrite temporary (a crash between the temp write
/// and the rename). Called on open; harmless when absent.
pub fn clean_stale_tmp(dir: &Path) {
    std::fs::remove_file(dir.join(format!("{MANIFEST_FILE}.tmp"))).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> DocumentEntry {
        DocumentEntry {
            name: name.to_string(),
            file: format!("{name}.snap"),
            k: 4,
            n: 1000,
            layout: CountsLayout::Blocked,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let entries = vec![entry("alpha"), entry("beta-2.v1")];
        let text = render(&entries, 7);
        assert!(text.starts_with(MANIFEST_HEADER));
        assert_eq!(parse(&text).unwrap(), entries);
        assert_eq!(parse_generation(&text), 7);
        assert_eq!(parse(MANIFEST_HEADER).unwrap(), vec![]);
    }

    #[test]
    fn generation_defaults_to_zero_on_legacy_manifests() {
        // A pre-generation manifest (no `# generation` line) parses and
        // reports generation 0 — the next rewrite starts counting.
        let legacy = format!("{MANIFEST_HEADER}\na\ta.snap\t4\t9\tflat\n");
        assert_eq!(parse(&legacy).unwrap().len(), 1);
        assert_eq!(parse_generation(&legacy), 0);
        // Garbage after the prefix is ignored, not an error.
        assert_eq!(
            parse_generation(&format!("{MANIFEST_HEADER}\n# generation x\n")),
            0
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("not-a-manifest\n").is_err());
        assert!(parse(&format!("{MANIFEST_HEADER}\na\tb\tc\n")).is_err()); // 3 fields
        assert!(parse(&format!("{MANIFEST_HEADER}\na\ta.snap\tx\t9\tflat\n")).is_err()); // bad k
        assert!(parse(&format!("{MANIFEST_HEADER}\na\ta.snap\t4\t9\tweird\n")).is_err()); // bad layout
        let dup = format!("{MANIFEST_HEADER}\na\ta.snap\t4\t9\tflat\na\ta.snap\t4\t9\tflat\n");
        assert!(parse(&dup).is_err());
        // `auto` is a build option, never a stored layout.
        assert!(parse(&format!("{MANIFEST_HEADER}\na\ta.snap\t4\t9\tauto\n")).is_err());
        // A tampered file field must not escape the corpus directory,
        // alias the manifest, or alias another document's snapshot.
        for bad in [
            "../../etc/passwd",
            "/abs/path.snap",
            "a/b.snap",
            ".hidden",
            "-flag",
            MANIFEST_FILE,
            "corpus.manifest.tmp",
        ] {
            let text = format!("{MANIFEST_HEADER}\na\t{bad}\t4\t9\tflat\n");
            assert!(parse(&text).is_err(), "file field `{bad}` must be rejected");
        }
        let shared = format!("{MANIFEST_HEADER}\na\ts.snap\t4\t9\tflat\nb\ts.snap\t4\t9\tflat\n");
        assert!(
            parse(&shared).is_err(),
            "shared snapshot file must be rejected"
        );
        // Comments and blanks are fine.
        let ok = format!("{MANIFEST_HEADER}\n# comment\n\na\ta.snap\t4\t9\tflat\n");
        assert_eq!(parse(&ok).unwrap().len(), 1);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("chr1").is_ok());
        assert!(validate_name("a.b_c-d").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".hidden").is_err());
        assert!(validate_name("-flag").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name("a b").is_err());
        assert!(validate_name(&"x".repeat(200)).is_err());
    }
}
