//! Live documents: streaming ingestion with snapshot generations and
//! sliding-window alerting.
//!
//! A *live* document is mutable: its byte stream keeps growing through
//! [`Corpus::append_live`] while readers keep querying. The write path is
//! deliberately split from the read path:
//!
//! * **Appends** land in an in-memory [`GrowableCounts`] tail plus a
//!   durable sidecar file (`{name}.live`) that records the model, the
//!   byte→symbol alphabet, and the full symbol stream — a restart replays
//!   the sidecar, so appends made after the last freeze survive.
//! * **Freezes** turn the consumed stream into a checksummed snapshot
//!   *generation* (`{name}.g{N}.snap`) behind the atomic manifest: the
//!   manifest entry flips from generation `N` to `N+1` in one rename, the
//!   corpus generation bumps (so routers notice via `/healthz` exactly as
//!   they do for a rebalance), and the previous generation's file stays on
//!   disk under a retention count — a reader holding a point-in-time entry
//!   clone, or a warm `Arc<Engine>`, keeps answering **bit-identically**
//!   to the generation it started with. Readers are never blocked: the
//!   expensive work (index compaction, snapshot write) happens before the
//!   brief membership write lock.
//! * **Watches** re-score only the appended tail: a registered watch
//!   (`window`, `threshold`, `top_t`) runs
//!   [`sigstr_core::streaming::score_tail_windows`] over the new symbols
//!   against the model fixed at creation, and above-threshold hits become
//!   [`Alert`]s delivered through the long-polling [`Corpus::watch_poll`].
//!
//! Queries always serve the **latest frozen generation** — the unfrozen
//! tail is visible to watches immediately but enters the query path at the
//! next freeze. That is what makes the read race benign: any answer is
//! bit-identical to *some* fully-frozen generation by construction.
//!
//! The in-memory tails are charged against the warm-engine cache budget
//! ([`Corpus::effective_budget`]): a corpus carrying large live tails
//! retains fewer warm static engines, so the total resident footprint
//! stays bounded.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sigstr_core::streaming::score_tail_windows;
use sigstr_core::{CountsLayout, Engine, Model, Scored, Sequence};

use crate::manifest::{self, DocumentEntry};
use crate::{io_error, Corpus, CorpusError, LoadKind, Result};

/// Sidecar magic: the first four bytes of every `{name}.live` file.
const SIDECAR_MAGIC: &[u8; 4] = b"SGLV";

/// Sidecar format version.
const SIDECAR_VERSION: u32 = 1;

/// Longest live-document name: the generation suffix (`.g{N}.snap`) must
/// still fit the manifest's 140-character file-field limit.
const MAX_LIVE_NAME: usize = 100;

/// Alerts retained per document; the oldest are dropped first, so a slow
/// poller loses the tail of history, never blocks the appender.
const ALERT_CAP: usize = 4096;

/// Alerts returned by a single poll.
const POLL_BATCH: usize = 256;

/// Freeze-pause histogram bucket upper bounds, in microseconds.
pub const FREEZE_BUCKETS_US: [u64; 8] =
    [100, 500, 1_000, 5_000, 25_000, 100_000, 500_000, 2_500_000];

/// Freeze policy and generation retention for a corpus's live documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveOptions {
    /// Freeze when the unfrozen tail reaches this many symbols (checked
    /// inline on append).
    pub freeze_tail: usize,
    /// Freeze when the oldest unfrozen symbol is at least this old
    /// (checked by [`Corpus::freeze_due`] — the serving layer's ticker).
    pub freeze_age: Duration,
    /// Snapshot generations kept on disk per document (≥ 2, so the
    /// generation a racing reader is loading always survives its own
    /// replacement).
    pub retain: usize,
}

impl Default for LiveOptions {
    fn default() -> Self {
        Self {
            freeze_tail: 64 * 1024,
            freeze_age: Duration::from_secs(2),
            retain: 3,
        }
    }
}

/// A registered sliding-window watch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchSpec {
    /// Longest substring (window) the watch scores, in symbols.
    pub window: usize,
    /// Alert on `X² > threshold` (strict, like `above_threshold`).
    pub threshold: f64,
    /// At most this many alerts per append (best-first).
    pub top_t: usize,
}

/// One above-threshold hit pushed by a watch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// Monotonic per-document sequence number (resumption cursor).
    pub seq: u64,
    /// The watch that produced it.
    pub watch: u64,
    /// The document's freeze generation when the alert fired.
    pub generation: u64,
    /// The scored substring (positions are document-absolute).
    pub item: Scored,
}

/// What [`Corpus::watch_poll`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchBatch {
    /// Alerts with `seq > since`, oldest first (possibly empty on
    /// timeout).
    pub alerts: Vec<Alert>,
    /// Pass this as the next poll's `since` to resume without gaps.
    pub next_since: u64,
    /// The document's freeze generation at delivery time.
    pub generation: u64,
    /// Stream length (frozen prefix + unfrozen tail) at delivery time.
    pub n: usize,
}

/// The result of one append.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendOutcome {
    /// Stream length after the append.
    pub n: usize,
    /// Unfrozen tail length after the append (0 if it triggered a
    /// freeze).
    pub tail: usize,
    /// Freeze generation after the append.
    pub generation: u64,
    /// Whether this append crossed the tail threshold and froze.
    pub frozen: bool,
    /// Alerts emitted by registered watches for this append.
    pub alerts: Vec<Alert>,
}

/// Per-document observability snapshot (see [`Corpus::live_status`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LiveDocStatus {
    /// Document name.
    pub name: String,
    /// Freeze generation (1 = the creation snapshot).
    pub generation: u64,
    /// Stream length (frozen prefix + unfrozen tail).
    pub n: usize,
    /// Unfrozen tail length in symbols.
    pub tail: usize,
    /// Appends accepted.
    pub appends: u64,
    /// Symbols accepted across all appends.
    pub appended_symbols: u64,
    /// Freezes performed (excluding the creation snapshot).
    pub freezes: u64,
    /// Registered watches.
    pub watches: usize,
    /// Alerts pushed into the ring by watches.
    pub alerts_emitted: u64,
    /// Alerts handed out by polls.
    pub alerts_delivered: u64,
    /// Bytes of in-memory live state (growable table + symbols),
    /// charged against the cache budget.
    pub live_bytes: usize,
}

/// Corpus-wide live-document observability (see [`Corpus::live_stats`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveStats {
    /// Per-document snapshots, in name order.
    pub docs: Vec<LiveDocStatus>,
    /// Freeze-pause histogram: counts per [`FREEZE_BUCKETS_US`] bucket,
    /// plus one overflow bucket.
    pub freeze_buckets: [u64; FREEZE_BUCKETS_US.len() + 1],
    /// Total freezes observed by the histogram.
    pub freeze_count: u64,
    /// Sum of freeze pauses in microseconds.
    pub freeze_sum_us: u64,
    /// Total in-memory live bytes across documents.
    pub live_bytes: usize,
}

/// Corpus-level freeze-pause histogram (lock-free, updated at the end of
/// every freeze).
#[derive(Debug, Default)]
pub(crate) struct FreezeHist {
    buckets: [AtomicU64; FREEZE_BUCKETS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl FreezeHist {
    fn observe(&self, us: u64) {
        let slot = FREEZE_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(FREEZE_BUCKETS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ([u64; FREEZE_BUCKETS_US.len() + 1], u64, u64) {
        let mut buckets = [0u64; FREEZE_BUCKETS_US.len() + 1];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        (
            buckets,
            self.count.load(Ordering::Relaxed),
            self.sum_us.load(Ordering::Relaxed),
        )
    }
}

struct Watch {
    id: u64,
    spec: WatchSpec,
}

/// The mutable half of a live document, guarded by one mutex: the
/// appender, the freezer, and pollers all synchronize here, while
/// queries never touch it (they go through the manifest entry and the
/// warm-engine cache like any static document).
struct LiveState {
    counts: sigstr_core::GrowableCounts,
    model: Model,
    layout: CountsLayout,
    /// symbol → original byte (sidecar header; answers render through it).
    alphabet: Vec<u8>,
    /// byte → symbol + 1 (0 = not in the alphabet).
    sym_of: [u16; 256],
    /// Open append handle on the sidecar.
    file: std::fs::File,
    generation: u64,
    frozen_len: usize,
    last_freeze: Instant,
    appends: u64,
    appended_symbols: u64,
    freezes: u64,
    watches: Vec<Watch>,
    next_watch: u64,
    alerts: VecDeque<Alert>,
    alert_seq: u64,
    alerts_emitted: u64,
    alerts_delivered: u64,
    /// Set by `remove_document` so a parked poller stops waiting on a
    /// document that no longer exists.
    closed: bool,
}

impl LiveState {
    fn tail(&self) -> usize {
        self.counts.n() - self.frozen_len
    }

    fn live_bytes(&self) -> usize {
        self.counts.index_bytes() + self.counts.n()
    }
}

pub(crate) struct LiveDoc {
    name: String,
    state: Mutex<LiveState>,
    notify: Condvar,
}

impl std::fmt::Debug for LiveDoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveDoc").field("name", &self.name).finish()
    }
}

fn sym_table(alphabet: &[u8]) -> [u16; 256] {
    let mut table = [0u16; 256];
    for (sym, &b) in alphabet.iter().enumerate() {
        table[b as usize] = sym as u16 + 1;
    }
    table
}

fn layout_code(layout: CountsLayout) -> u8 {
    match layout {
        CountsLayout::Blocked => 1,
        _ => 0,
    }
}

fn layout_from_code(code: u8) -> CountsLayout {
    if code == 1 {
        CountsLayout::Blocked
    } else {
        CountsLayout::Flat
    }
}

fn sidecar_path(dir: &std::path::Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.live"))
}

fn generation_file(name: &str, generation: u64) -> String {
    format!("{name}.g{generation}.snap")
}

/// The generation encoded in a live document's snapshot file name
/// (`{name}.g{N}.snap`), or `None` for static-document file names.
fn parse_generation_file(name: &str, file: &str) -> Option<u64> {
    file.strip_prefix(name)?
        .strip_prefix(".g")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Render the sidecar header: magic, version, geometry, alphabet, model.
fn sidecar_header(k: usize, layout: CountsLayout, alphabet: &[u8], model: &Model) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + alphabet.len() + k * 8);
    out.extend_from_slice(SIDECAR_MAGIC);
    out.extend_from_slice(&SIDECAR_VERSION.to_le_bytes());
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.push(layout_code(layout));
    out.extend_from_slice(alphabet);
    for &p in model.probs() {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

struct SidecarContents {
    layout: CountsLayout,
    alphabet: Vec<u8>,
    model: Model,
    symbols: Vec<u8>,
}

fn corrupt(path: &std::path::Path, what: &str) -> CorpusError {
    CorpusError::Manifest {
        details: format!("live sidecar {}: {what}", path.display()),
    }
}

fn read_sidecar(path: &std::path::Path) -> Result<SidecarContents> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(io_error(path))?;
    if bytes.len() < 13 || &bytes[..4] != SIDECAR_MAGIC {
        return Err(corrupt(path, "bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != SIDECAR_VERSION {
        return Err(corrupt(path, &format!("unsupported version {version}")));
    }
    let k = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let layout = layout_from_code(bytes[12]);
    let header_len = 13 + k + k * 8;
    if k == 0 || bytes.len() < header_len {
        return Err(corrupt(path, "truncated header"));
    }
    let alphabet = bytes[13..13 + k].to_vec();
    let mut probs = Vec::with_capacity(k);
    for i in 0..k {
        let at = 13 + k + i * 8;
        probs.push(f64::from_le_bytes(
            bytes[at..at + 8].try_into().expect("8 bytes"),
        ));
    }
    let model = Model::from_probs(probs).map_err(CorpusError::Core)?;
    let symbols = bytes[header_len..].to_vec();
    if symbols.iter().any(|&s| s as usize >= k) {
        return Err(corrupt(path, "symbol out of alphabet range"));
    }
    Ok(SidecarContents {
        layout,
        alphabet,
        model,
        symbols,
    })
}

impl Corpus {
    // -- Creation and recovery ---------------------------------------------

    /// Set the live-document freeze policy (tail size, age, generation
    /// retention). `retain` is clamped to ≥ 2 so the generation a racing
    /// reader may still be loading is never garbage-collected by its own
    /// replacement.
    pub fn with_live_options(mut self, opts: LiveOptions) -> Self {
        self.live_opts = LiveOptions {
            retain: opts.retain.max(2),
            ..opts
        };
        self
    }

    /// The live-document freeze policy.
    pub fn live_options(&self) -> LiveOptions {
        self.live_opts
    }

    /// Register a **live** (appendable) document. Like
    /// [`Corpus::add_document`], but the document stays open for
    /// [`Corpus::append_live`]: the initial sequence becomes snapshot
    /// generation 1 (`{name}.g1.snap`), and a durable sidecar
    /// (`{name}.live`) records the fixed model, the byte→symbol
    /// `alphabet` (`alphabet[s]` is the byte rendered for symbol `s`, as
    /// returned by [`Sequence::from_text`]), and the symbol stream, so a
    /// reopened corpus resumes with the unfrozen tail intact.
    ///
    /// The model is **fixed at creation** — that is the point: the null
    /// model is the hypothesis, and appended data is scored against it.
    pub fn add_live_document(
        &mut self,
        name: &str,
        seq: &Sequence,
        alphabet: &[u8],
        model: Model,
        layout: CountsLayout,
    ) -> Result<()> {
        manifest::validate_name(name)?;
        if name.len() > MAX_LIVE_NAME {
            return Err(CorpusError::InvalidName {
                name: name.to_string(),
                details: "live document names are limited to 100 characters \
                          (the generation suffix must fit the manifest)",
            });
        }
        if self.position(name).is_some() {
            return Err(CorpusError::DuplicateDocument {
                name: name.to_string(),
            });
        }
        let k = seq.k();
        if alphabet.len() != k || model.k() != k {
            return Err(CorpusError::Core(sigstr_core::Error::AlphabetMismatch {
                model_k: if model.k() != k {
                    model.k()
                } else {
                    alphabet.len()
                },
                seq_k: k,
            }));
        }
        let mut counts = sigstr_core::GrowableCounts::new(k);
        for &s in seq.symbols() {
            counts.push(s);
        }
        let engine = Engine::from_index(counts.freeze_index(layout), model.clone())?;

        // Sidecar first (tmp + rename): if anything later fails, an
        // orphan sidecar without a manifest entry is inert.
        let sidecar = sidecar_path(&self.dir, name);
        let tmp = self.dir.join(format!("{name}.live.tmp"));
        let mut header = sidecar_header(k, layout, alphabet, &model);
        header.extend_from_slice(seq.symbols());
        std::fs::write(&tmp, &header).map_err(io_error(&tmp))?;
        std::fs::rename(&tmp, &sidecar).map_err(io_error(&sidecar))?;

        let file = generation_file(name, 1);
        if let Err(e) = self.install_document_as(name, file, engine) {
            std::fs::remove_file(&sidecar).ok();
            return Err(e);
        }
        let handle = std::fs::OpenOptions::new()
            .append(true)
            .open(&sidecar)
            .map_err(io_error(&sidecar))?;
        let state = LiveState {
            counts,
            model,
            layout,
            alphabet: alphabet.to_vec(),
            sym_of: sym_table(alphabet),
            file: handle,
            generation: 1,
            frozen_len: seq.len(),
            last_freeze: Instant::now(),
            appends: 0,
            appended_symbols: 0,
            freezes: 0,
            watches: Vec::new(),
            next_watch: 1,
            alerts: VecDeque::new(),
            alert_seq: 0,
            alerts_emitted: 0,
            alerts_delivered: 0,
            closed: false,
        };
        self.adopt_live_doc(name, state);
        Ok(())
    }

    fn adopt_live_doc(&self, name: &str, state: LiveState) {
        self.live_bytes
            .fetch_add(state.live_bytes(), Ordering::Relaxed);
        self.live.write().expect("live map poisoned").insert(
            name.to_string(),
            Arc::new(LiveDoc {
                name: name.to_string(),
                state: Mutex::new(state),
                notify: Condvar::new(),
            }),
        );
    }

    /// Rebuild live-document state from sidecars after [`Corpus::open`]:
    /// for every manifest entry with a `{name}.live` sidecar, replay the
    /// symbol stream. The frozen prefix length comes from the manifest
    /// (`entry.n`); anything beyond it in the sidecar is the unfrozen
    /// tail — appends made after the last freeze survive the restart.
    pub(crate) fn recover_live_docs(&self) -> Result<()> {
        let entries = self.entries();
        for entry in entries {
            if self.is_live(&entry.name) {
                continue;
            }
            let sidecar = sidecar_path(&self.dir, &entry.name);
            if !sidecar.exists() {
                continue;
            }
            let contents = read_sidecar(&sidecar)?;
            if contents.alphabet.len() != entry.k {
                return Err(corrupt(&sidecar, "alphabet disagrees with the manifest"));
            }
            if contents.symbols.len() < entry.n {
                return Err(corrupt(
                    &sidecar,
                    "shorter than the manifest's frozen prefix",
                ));
            }
            let generation = parse_generation_file(&entry.name, &entry.file).unwrap_or(1);
            let mut counts = sigstr_core::GrowableCounts::new(entry.k);
            for &s in &contents.symbols {
                counts.push(s);
            }
            let handle = std::fs::OpenOptions::new()
                .append(true)
                .open(&sidecar)
                .map_err(io_error(&sidecar))?;
            let state = LiveState {
                counts,
                model: contents.model,
                layout: contents.layout,
                sym_of: sym_table(&contents.alphabet),
                alphabet: contents.alphabet,
                file: handle,
                generation,
                frozen_len: entry.n,
                last_freeze: Instant::now(),
                appends: 0,
                appended_symbols: 0,
                freezes: 0,
                watches: Vec::new(),
                next_watch: 1,
                alerts: VecDeque::new(),
                alert_seq: 0,
                alerts_emitted: 0,
                alerts_delivered: 0,
                closed: false,
            };
            self.adopt_live_doc(&entry.name, state);
        }
        Ok(())
    }

    /// Whether `name` is a live (appendable) document.
    pub fn is_live(&self, name: &str) -> bool {
        self.live
            .read()
            .expect("live map poisoned")
            .contains_key(name)
    }

    fn live_doc(&self, name: &str) -> Result<Arc<LiveDoc>> {
        let live = self.live.read().expect("live map poisoned");
        if let Some(doc) = live.get(name) {
            return Ok(Arc::clone(doc));
        }
        drop(live);
        if self.position(name).is_some() {
            Err(CorpusError::NotLive {
                name: name.to_string(),
            })
        } else {
            Err(CorpusError::UnknownDocument {
                name: name.to_string(),
            })
        }
    }

    /// Drop live state for a removed document and delete its sidecar and
    /// generation files. Called by `remove_document` (which already
    /// deleted the manifest entry and the current snapshot).
    pub(crate) fn remove_live_doc(&self, name: &str) {
        let doc = self.live.write().expect("live map poisoned").remove(name);
        if let Some(doc) = doc {
            let mut state = doc.state.lock().expect("live state poisoned");
            state.closed = true;
            self.live_bytes
                .fetch_sub(state.live_bytes(), Ordering::Relaxed);
            let top = state.generation;
            drop(state);
            doc.notify.notify_all();
            for g in 1..=top {
                std::fs::remove_file(self.dir.join(generation_file(name, g))).ok();
            }
            std::fs::remove_file(sidecar_path(&self.dir, name)).ok();
        }
    }

    /// Detach a live document without touching its files: the on-disk
    /// manifest no longer lists this name (an external rebalance moved
    /// it away), so appends and polls must stop here, but the sidecar
    /// and generation snapshots now belong to whoever rewrote the
    /// manifest. Parked long-polls wake and answer `UnknownDocument`.
    pub(crate) fn detach_live_doc(&self, name: &str) {
        let doc = self.live.write().expect("live map poisoned").remove(name);
        if let Some(doc) = doc {
            let mut state = doc.state.lock().expect("live state poisoned");
            state.closed = true;
            self.live_bytes
                .fetch_sub(state.live_bytes(), Ordering::Relaxed);
            drop(state);
            doc.notify.notify_all();
        }
    }

    // -- The write path ----------------------------------------------------

    /// Append raw bytes to a live document. ASCII whitespace is skipped;
    /// every other byte must be in the document's fixed alphabet
    /// (all-or-nothing: an invalid byte rejects the whole append before
    /// any state changes). Registered watches re-score the appended tail
    /// and their alerts come back in the outcome (and through
    /// [`Corpus::watch_poll`]). Crossing the configured tail threshold
    /// freezes inline — the caller pays the freeze pause, readers don't.
    pub fn append_live(&self, name: &str, bytes: &[u8]) -> Result<AppendOutcome> {
        let doc = self.live_doc(name)?;
        let mut state = doc.state.lock().expect("live state poisoned");
        let mut symbols = Vec::with_capacity(bytes.len());
        for &b in bytes {
            if b.is_ascii_whitespace() {
                continue;
            }
            match state.sym_of[b as usize] {
                0 => {
                    return Err(CorpusError::InvalidAppend {
                        name: name.to_string(),
                        details: format!(
                            "byte 0x{b:02x} is not in the document's alphabet ({} symbols)",
                            state.alphabet.len()
                        ),
                    })
                }
                s => symbols.push((s - 1) as u8),
            }
        }
        let before_bytes = state.live_bytes();
        let old_n = state.counts.n();
        for &s in &symbols {
            state.counts.push(s);
        }
        // Durability: the sidecar grows before we acknowledge. A torn
        // trailing write surfaces on recovery as an out-of-range symbol.
        state
            .file
            .write_all(&symbols)
            .map_err(|e| CorpusError::Io {
                path: sidecar_path(&self.dir, name).display().to_string(),
                details: e.to_string(),
            })?;
        state.appends += 1;
        state.appended_symbols += symbols.len() as u64;
        self.live_bytes
            .fetch_add(state.live_bytes() - before_bytes, Ordering::Relaxed);

        // Sliding-window monitor: score only the windows that end in the
        // appended tail, against the model fixed at creation.
        let mut alerts = Vec::new();
        if !symbols.is_empty() && !state.watches.is_empty() {
            let generation = state.generation;
            let watch_runs: Vec<(u64, WatchSpec)> =
                state.watches.iter().map(|w| (w.id, w.spec)).collect();
            for (id, spec) in watch_runs {
                for item in score_tail_windows(
                    &state.counts,
                    &state.model,
                    old_n,
                    spec.window,
                    spec.threshold,
                    spec.top_t,
                ) {
                    state.alert_seq += 1;
                    let alert = Alert {
                        seq: state.alert_seq,
                        watch: id,
                        generation,
                        item,
                    };
                    state.alerts.push_back(alert);
                    if state.alerts.len() > ALERT_CAP {
                        state.alerts.pop_front();
                    }
                    state.alerts_emitted += 1;
                    alerts.push(alert);
                }
            }
        }

        let mut frozen = false;
        if state.tail() >= self.live_opts.freeze_tail && state.tail() > 0 {
            self.freeze_locked(&doc, &mut state)?;
            frozen = true;
        }
        let outcome = AppendOutcome {
            n: state.counts.n(),
            tail: state.tail(),
            generation: state.generation,
            frozen,
            alerts,
        };
        let emitted = !outcome.alerts.is_empty();
        drop(state);
        if emitted {
            doc.notify.notify_all();
        }
        Ok(outcome)
    }

    /// Freeze a live document's unfrozen tail into the next snapshot
    /// generation now, regardless of thresholds. Returns the new
    /// generation, or `None` when the tail was empty (nothing to do).
    pub fn freeze_live(&self, name: &str) -> Result<Option<u64>> {
        let doc = self.live_doc(name)?;
        let mut state = doc.state.lock().expect("live state poisoned");
        if state.tail() == 0 {
            return Ok(None);
        }
        self.freeze_locked(&doc, &mut state)?;
        Ok(Some(state.generation))
    }

    /// Freeze every live document whose unfrozen tail is older than the
    /// configured age (or larger than the tail threshold — covers a tail
    /// that grew while freezes were failing). The serving layer calls
    /// this from a ticker thread. Returns how many documents froze.
    pub fn freeze_due(&self) -> usize {
        let docs: Vec<Arc<LiveDoc>> = self
            .live
            .read()
            .expect("live map poisoned")
            .values()
            .cloned()
            .collect();
        let mut froze = 0;
        for doc in docs {
            let mut state = doc.state.lock().expect("live state poisoned");
            if state.closed || state.tail() == 0 {
                continue;
            }
            let due = state.last_freeze.elapsed() >= self.live_opts.freeze_age
                || state.tail() >= self.live_opts.freeze_tail;
            if due && self.freeze_locked(&doc, &mut state).is_ok() {
                froze += 1;
            }
        }
        froze
    }

    /// The freeze itself. Expensive work (index compaction, snapshot
    /// write) happens while holding only this document's state lock —
    /// queries never take it — and the membership write lock is held just
    /// long enough to swap one manifest entry. Readers racing this keep
    /// serving the previous generation bit-exactly: its file stays on
    /// disk under the retention count and their warm `Arc<Engine>`
    /// handles are immune to eviction.
    fn freeze_locked(&self, doc: &LiveDoc, state: &mut LiveState) -> Result<()> {
        let mut span = sigstr_obs::span("freeze");
        span.attr("doc", doc.name.as_str());
        span.attr_u64("tail_symbols", state.tail() as u64);
        let t0 = Instant::now();
        let engine =
            Engine::from_index(state.counts.freeze_index(state.layout), state.model.clone())?;
        let next = state.generation + 1;
        let file = generation_file(&doc.name, next);
        let path = self.dir.join(&file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        engine.write_snapshot_path(&tmp)?;
        std::fs::rename(&tmp, &path).map_err(io_error(&path))?;
        // Make the sidecar's view of the frozen prefix durable alongside
        // the generation it belongs to.
        state.file.sync_data().ok();
        let entry = DocumentEntry {
            name: doc.name.clone(),
            file,
            k: engine.k(),
            n: engine.n(),
            layout: engine.layout(),
        };
        if let Err(e) = self.replace_entry(&doc.name, entry) {
            std::fs::remove_file(&path).ok();
            return Err(e);
        }
        let budget = self.effective_budget();
        {
            let mut cache = self.cache.lock().expect("corpus cache poisoned");
            // Retire the previous generation's warm engine first so its
            // bytes leave the accounting before the new one is charged
            // (handles already handed out keep answering).
            cache.remove(&doc.name);
            cache.insert(
                doc.name.to_string(),
                Arc::new(engine),
                budget,
                LoadKind::Built,
            );
        }
        state.generation = next;
        state.frozen_len = state.counts.n();
        state.last_freeze = Instant::now();
        state.freezes += 1;
        self.freeze_hist
            .observe(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        // Generation GC: keep the newest `retain` generations so racing
        // readers of the previous one never lose their file mid-load.
        if next > self.live_opts.retain as u64 {
            let expired = next - self.live_opts.retain as u64;
            for g in expired.saturating_sub(8)..=expired {
                std::fs::remove_file(self.dir.join(generation_file(&doc.name, g))).ok();
            }
        }
        Ok(())
    }

    // -- Watches -----------------------------------------------------------

    /// Register a sliding-window watch on a live document. Every
    /// subsequent append re-scores its tail under `spec` and pushes
    /// above-threshold alerts, retrievable via [`Corpus::watch_poll`].
    pub fn watch_register(&self, name: &str, spec: WatchSpec) -> Result<u64> {
        if spec.window == 0
            || spec.top_t == 0
            || !spec.threshold.is_finite()
            || spec.threshold < 0.0
        {
            return Err(CorpusError::InvalidAppend {
                name: name.to_string(),
                details: "watch requires window ≥ 1, top_t ≥ 1, and a finite threshold ≥ 0"
                    .to_string(),
            });
        }
        let doc = self.live_doc(name)?;
        let mut state = doc.state.lock().expect("live state poisoned");
        let id = state.next_watch;
        state.next_watch += 1;
        state.watches.push(Watch { id, spec });
        Ok(id)
    }

    /// Remove a watch. Returns whether it existed.
    pub fn watch_unregister(&self, name: &str, id: u64) -> Result<bool> {
        let doc = self.live_doc(name)?;
        let mut state = doc.state.lock().expect("live state poisoned");
        let before = state.watches.len();
        state.watches.retain(|w| w.id != id);
        Ok(state.watches.len() < before)
    }

    /// Long-poll for alerts with `seq > since`. Returns as soon as such
    /// alerts exist (oldest first, bounded batch), or with an empty batch
    /// once `timeout` elapses. The wait parks on a condvar — it holds no
    /// lock that the appender, the freezer, or queries contend on beyond
    /// this document's own state mutex, which the wait releases.
    pub fn watch_poll(&self, name: &str, since: u64, timeout: Duration) -> Result<WatchBatch> {
        let doc = self.live_doc(name)?;
        let deadline = Instant::now() + timeout;
        let mut state = doc.state.lock().expect("live state poisoned");
        loop {
            if state.closed {
                return Err(CorpusError::UnknownDocument {
                    name: name.to_string(),
                });
            }
            if state.alerts.back().is_some_and(|a| a.seq > since) {
                let alerts: Vec<Alert> = state
                    .alerts
                    .iter()
                    .filter(|a| a.seq > since)
                    .take(POLL_BATCH)
                    .copied()
                    .collect();
                let next_since = alerts.last().map_or(since, |a| a.seq);
                state.alerts_delivered += alerts.len() as u64;
                return Ok(WatchBatch {
                    alerts,
                    next_since,
                    generation: state.generation,
                    n: state.counts.n(),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(WatchBatch {
                    alerts: Vec::new(),
                    next_since: since.min(state.alert_seq),
                    generation: state.generation,
                    n: state.counts.n(),
                });
            }
            let (guard, _) = doc
                .notify
                .wait_timeout(state, deadline - now)
                .expect("live state poisoned");
            state = guard;
        }
    }

    // -- Observability -----------------------------------------------------

    /// Per-document live status, in name order.
    pub fn live_status(&self) -> Vec<LiveDocStatus> {
        let docs: Vec<Arc<LiveDoc>> = self
            .live
            .read()
            .expect("live map poisoned")
            .values()
            .cloned()
            .collect();
        let mut out: Vec<LiveDocStatus> = docs
            .iter()
            .map(|doc| {
                let state = doc.state.lock().expect("live state poisoned");
                LiveDocStatus {
                    name: doc.name.clone(),
                    generation: state.generation,
                    n: state.counts.n(),
                    tail: state.tail(),
                    appends: state.appends,
                    appended_symbols: state.appended_symbols,
                    freezes: state.freezes,
                    watches: state.watches.len(),
                    alerts_emitted: state.alerts_emitted,
                    alerts_delivered: state.alerts_delivered,
                    live_bytes: state.live_bytes(),
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// One live document's status.
    pub fn live_doc_status(&self, name: &str) -> Option<LiveDocStatus> {
        self.live_status().into_iter().find(|s| s.name == name)
    }

    /// Corpus-wide live-document stats: per-doc status plus the freeze
    /// pause histogram and the total in-memory tail bytes charged against
    /// the cache budget.
    pub fn live_stats(&self) -> LiveStats {
        let docs = self.live_status();
        let (freeze_buckets, freeze_count, freeze_sum_us) = self.freeze_hist.snapshot();
        let live_bytes = docs.iter().map(|d| d.live_bytes).sum();
        LiveStats {
            docs,
            freeze_buckets,
            freeze_count,
            freeze_sum_us,
            live_bytes,
        }
    }

    /// The cache budget available to warm engines once in-memory live
    /// tails are charged: live documents and the LRU cache share one
    /// byte budget, so a corpus carrying big unfrozen tails retains
    /// fewer warm static engines instead of blowing past its limit.
    pub fn effective_budget(&self) -> usize {
        self.budget
            .saturating_sub(self.live_bytes.load(Ordering::Relaxed))
    }

    /// Swap one document's manifest entry (same name, new file/geometry)
    /// and bump the generation — the `&self` sibling of the add/remove
    /// paths, used by freezes, which run on serving (shared) corpora.
    fn replace_entry(&self, name: &str, entry: DocumentEntry) -> Result<()> {
        let mut membership = self.membership.write().expect("membership poisoned");
        let index = membership
            .entries
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| CorpusError::UnknownDocument {
                name: name.to_string(),
            })?;
        let previous = std::mem::replace(&mut membership.entries[index], entry);
        if let Err(e) = manifest::write(&self.dir, &membership.entries, membership.generation + 1) {
            membership.entries[index] = previous;
            return Err(e);
        }
        membership.generation += 1;
        Ok(())
    }
}

pub(crate) type LiveMap = HashMap<String, Arc<LiveDoc>>;
pub(crate) type LiveBytes = AtomicUsize;
