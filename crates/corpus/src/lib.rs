//! Sharded corpus service: a directory of engine snapshots served from a
//! budgeted cache of warm engines.
//!
//! [`sigstr_core::Engine`] answers many queries over **one** document;
//! production serving needs *many documents* with a lifecycle: indexes
//! persisted once ([`sigstr_core::snapshot`]), loaded lazily, kept warm
//! under a memory budget, and queried concurrently. [`Corpus`] is that
//! layer:
//!
//! * **Membership** lives in a versioned manifest
//!   ([`manifest::MANIFEST_FILE`]) listing each document's snapshot file
//!   and geometry; [`Corpus::add_document`] / [`Corpus::remove_document`]
//!   update it atomically (temp file + rename).
//! * **Materialization is lazy and budgeted**: a document's engine is
//!   loaded from its snapshot on first use — through the zero-copy mmap
//!   loader when [`Corpus::with_mmap`] is on — and retained in an LRU
//!   cache bounded by the sum of [`Engine::resident_bytes`]
//!   ([`Corpus::with_budget`]); the least-recently-used engines are
//!   evicted when a load would exceed the budget, and an evicted mapped
//!   engine gives its pages back to the kernel
//!   ([`Engine::discard_resident`]). Engines are handed out as
//!   `Arc<Engine>`, so eviction never invalidates an in-flight query.
//! * **Dispatch is concurrent**: per-document queries fan out over one
//!   shared worker pool (the PR 2 [`Batch`] driver, generalized to borrow
//!   cached engines), and repeated runs over the same corpus reuse the
//!   warm engines instead of rebuilding one per input per run.
//! * **Corpus-wide answers** merge per-document results deterministically:
//!   [`Corpus::top_t_merged`] is bit-identical to mining each document
//!   independently and merging by score (ties broken by document index,
//!   then by each document's canonical item order);
//!   [`Corpus::above_threshold_merged`] concatenates per-document
//!   canonical threshold sets in manifest order.
//!
//! # Example
//!
//! ```no_run
//! use sigstr_core::{CountsLayout, Model, Query, Sequence};
//! use sigstr_corpus::Corpus;
//!
//! let mut corpus = Corpus::create("corpus-dir").unwrap();
//! let seq = Sequence::from_symbols(vec![0, 1, 1, 1, 0, 1], 2).unwrap();
//! corpus
//!     .add_document("doc-a", &seq, Model::uniform(2).unwrap(), CountsLayout::Auto)
//!     .unwrap();
//! let answers = corpus.query_all(&Query::mss());
//! let merged = corpus.top_t_merged(3).unwrap();
//! assert_eq!(answers.len(), 1);
//! assert!(merged.len() <= 3);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod live;
pub mod manifest;

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use sigstr_core::engine::{Answer, Batch, Query};
use sigstr_core::{CountsLayout, Engine, Model, Scored, Sequence};

pub use live::{
    Alert, AppendOutcome, LiveDocStatus, LiveOptions, LiveStats, WatchBatch, WatchSpec,
    FREEZE_BUCKETS_US,
};
pub use manifest::{DocumentEntry, MANIFEST_FILE};

/// Default cache budget: resident count-index bytes across warm engines
/// (256 MiB — a few large documents or hundreds of small ones).
pub const DEFAULT_BUDGET_BYTES: usize = 256 << 20;

/// Concurrent snapshot loads during a batch cold start (bounded — loads
/// are I/O plus checksum work, and past a handful they contend on
/// memory bandwidth rather than overlapping).
const MAX_CONCURRENT_LOADS: usize = 8;

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Errors of the corpus layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// An underlying engine/snapshot error.
    Core(sigstr_core::Error),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error message.
        details: String,
    },
    /// The manifest is malformed.
    Manifest {
        /// What failed to parse.
        details: String,
    },
    /// A document name is not in the corpus.
    UnknownDocument {
        /// The offending name.
        name: String,
    },
    /// A document with this name already exists.
    DuplicateDocument {
        /// The offending name.
        name: String,
    },
    /// A document name violates the naming rules.
    InvalidName {
        /// The offending name.
        name: String,
        /// The rules it violates.
        details: &'static str,
    },
    /// A live-document operation (append, watch) targeted a static
    /// document.
    NotLive {
        /// The offending name.
        name: String,
    },
    /// An append or watch request was malformed (out-of-alphabet byte,
    /// degenerate watch spec).
    InvalidAppend {
        /// The document targeted.
        name: String,
        /// What was wrong.
        details: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Core(e) => write!(f, "{e}"),
            CorpusError::Io { path, details } => write!(f, "{path}: {details}"),
            CorpusError::Manifest { details } => write!(f, "invalid manifest: {details}"),
            CorpusError::UnknownDocument { name } => {
                write!(f, "no document named `{name}` in the corpus")
            }
            CorpusError::DuplicateDocument { name } => {
                write!(f, "document `{name}` already exists in the corpus")
            }
            CorpusError::InvalidName { name, details } => {
                write!(f, "invalid document name `{name}`: {details}")
            }
            CorpusError::NotLive { name } => {
                write!(f, "document `{name}` is not live (appendable)")
            }
            CorpusError::InvalidAppend { name, details } => {
                write!(f, "invalid append/watch on `{name}`: {details}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<sigstr_core::Error> for CorpusError {
    fn from(e: sigstr_core::Error) -> Self {
        CorpusError::Core(e)
    }
}

/// Convenience alias for corpus operations.
pub type Result<T> = std::result::Result<T, CorpusError>;

fn io_error(path: &Path) -> impl FnOnce(std::io::Error) -> CorpusError {
    let path = path.display().to_string();
    move |e| CorpusError::Io {
        path,
        details: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// The warm-engine cache.
// ---------------------------------------------------------------------------

/// How a cached engine was materialized (drives the load-kind counters).
#[derive(Debug, Clone, Copy)]
enum LoadKind {
    /// Built in-process (`add_document` / `add_engine`), not from disk.
    Built,
    /// Bulk-read snapshot load.
    Read,
    /// Zero-copy mapped snapshot load.
    Mapped,
}

#[derive(Debug)]
struct CachedEngine {
    engine: Arc<Engine>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct EngineCache {
    map: HashMap<String, CachedEngine>,
    resident_bytes: usize,
    tick: u64,
    hits: u64,
    loads: u64,
    mmap_loads: u64,
    read_loads: u64,
    evictions: u64,
    /// Lazy verifications folded in from engines that left the cache
    /// (resident engines are summed live in `lazy_verifications`).
    retired_verifications: u64,
}

impl EngineCache {
    fn touch(&mut self, name: &str) -> Option<Arc<Engine>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(name).map(|cached| {
            cached.last_used = tick;
            self.hits += 1;
            Arc::clone(&cached.engine)
        })
    }

    /// Re-read each cached engine's byte footprint. Owned engines are
    /// fully resident from birth, but a mapped engine charges the budget
    /// only once its first query's verification pass has faulted the
    /// index in — so the accounting follows the engines' lifecycle
    /// rather than a value captured at insert.
    fn refresh(&mut self) {
        self.resident_bytes = 0;
        for cached in self.map.values_mut() {
            cached.bytes = cached.engine.resident_bytes();
            self.resident_bytes += cached.bytes;
        }
    }

    /// Insert a freshly loaded engine, evicting least-recently-used
    /// entries until the budget holds. A single engine larger than the
    /// whole budget still resides (alone) — the budget bounds *retention*,
    /// it never refuses service.
    fn insert(&mut self, name: String, engine: Arc<Engine>, budget: usize, kind: LoadKind) {
        self.tick += 1;
        self.loads += 1;
        match kind {
            LoadKind::Built => {}
            LoadKind::Read => self.read_loads += 1,
            LoadKind::Mapped => self.mmap_loads += 1,
        }
        self.refresh();
        let bytes = engine.resident_bytes();
        while self.resident_bytes + bytes > budget && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            self.remove(&victim);
            self.evictions += 1;
        }
        self.resident_bytes += bytes;
        self.map.insert(
            name,
            CachedEngine {
                engine,
                bytes,
                last_used: self.tick,
            },
        );
    }

    fn remove(&mut self, name: &str) {
        if let Some(cached) = self.map.remove(name) {
            self.resident_bytes -= cached.bytes;
            self.retired_verifications += cached.engine.lazy_verifications();
            // A mapped engine gives its pages back to the kernel when it
            // leaves the cache; a handle still held elsewhere faults them
            // back transparently on its next query.
            cached.engine.discard_resident();
        }
    }

    fn lazy_verifications(&self) -> u64 {
        self.retired_verifications
            + self
                .map
                .values()
                .map(|c| c.engine.lazy_verifications())
                .sum::<u64>()
    }
}

/// Cache observability counters (see [`Corpus::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a warm engine.
    pub hits: u64,
    /// Cold materializations of any kind (snapshot loads plus engines
    /// built in-process by `add_document` / `add_engine`).
    pub loads: u64,
    /// Snapshot loads served by the zero-copy mmap loader.
    pub mmap_loads: u64,
    /// Snapshot loads served by the bulk-read loader.
    pub read_loads: u64,
    /// Engines evicted to stay under the byte budget.
    pub evictions: u64,
    /// Deferred (first-query) verification passes observed on engines
    /// while cached — always `0` unless mmap serving is on.
    pub lazy_verifications: u64,
    /// Engines currently cached.
    pub resident: usize,
    /// Resident count-index bytes (a cached but not-yet-queried mapped
    /// engine counts as `0` until verification faults its index in).
    pub resident_bytes: usize,
}

// ---------------------------------------------------------------------------
// Corpus-wide answers.
// ---------------------------------------------------------------------------

/// One merged corpus-wide result item: which document it came from plus
/// the scored substring (positions are document-local).
#[derive(Debug, Clone, PartialEq)]
pub struct DocHit {
    /// Index of the document in [`Corpus::entries`] order.
    pub doc: usize,
    /// The document's name.
    pub name: String,
    /// The scored substring within that document.
    pub item: Scored,
}

/// Merge per-document ranked items into the canonical corpus-wide order:
/// score descending (total order on the `f64` bits), ties by document
/// index ascending, then by the item's rank within its document. This is
/// the explicit merge the corpus-level answers are defined against — a
/// brute-force per-document run piped through this function is
/// bit-identical to [`Corpus::top_t_merged`].
pub fn merge_ranked(per_doc: &[(usize, &str, &[Scored])], limit: usize) -> Vec<DocHit> {
    let mut hits: Vec<DocHit> = per_doc
        .iter()
        .flat_map(|(doc, name, items)| {
            items.iter().map(move |&item| DocHit {
                doc: *doc,
                name: (*name).to_string(),
                item,
            })
        })
        .collect();
    hits.sort_by(|a, b| {
        b.item
            .chi_square
            .total_cmp(&a.item.chi_square)
            .then_with(|| a.doc.cmp(&b.doc))
    });
    hits.truncate(limit);
    hits
}

// ---------------------------------------------------------------------------
// The corpus.
// ---------------------------------------------------------------------------

/// Departed-name tombstones retained per corpus (bounds memory across
/// unbounded rebalance churn; the oldest departures are forgotten
/// first, and a forgotten departure degrades to a plain 404).
const DEPARTED_CAP: usize = 1024;

/// The corpus's membership view: manifest entries, the generation they
/// came from, and tombstones for names that left. Grouped under one
/// lock so `refresh` swaps all three atomically with respect to
/// concurrent readers.
#[derive(Debug)]
struct Membership {
    entries: Vec<DocumentEntry>,
    generation: u64,
    /// Names that were members of an earlier generation and have since
    /// left (removed or migrated to another shard), with the generation
    /// that dropped them. Lets serving layers answer "moved away"
    /// (HTTP `410 Gone`) instead of "never existed" (404).
    departed: HashMap<String, u64>,
}

fn note_departed(membership: &mut Membership, name: &str, generation: u64) {
    membership.departed.insert(name.to_string(), generation);
    if membership.departed.len() > DEPARTED_CAP {
        let mut generations: Vec<u64> = membership.departed.values().copied().collect();
        generations.sort_unstable();
        let cutoff = generations[generations.len() - DEPARTED_CAP];
        membership.departed.retain(|_, g| *g >= cutoff);
    }
}

/// A directory of document snapshots served from a budgeted warm-engine
/// cache. See the [module docs](self) for the full story.
///
/// Membership is interior-mutable behind an `RwLock` so a *serving*
/// corpus (shared `&self` across a worker pool) can pick up manifest
/// rewrites made by another process — a live rebalance — via
/// [`Corpus::refresh`], without restarting or blocking in-flight
/// queries.
#[derive(Debug)]
pub struct Corpus {
    dir: PathBuf,
    membership: RwLock<Membership>,
    budget: usize,
    threads: usize,
    mmap: bool,
    cache: Mutex<EngineCache>,
    batch: OnceLock<Batch>,
    /// Live (appendable) documents by name — see [`mod@live`].
    live: RwLock<live::LiveMap>,
    /// Freeze policy and generation retention for live documents.
    live_opts: live::LiveOptions,
    /// In-memory bytes held by live tails, charged against the cache
    /// budget ([`Corpus::effective_budget`]).
    live_bytes: live::LiveBytes,
    /// Corpus-wide freeze-pause histogram.
    freeze_hist: live::FreezeHist,
}

impl Corpus {
    /// Create a new corpus directory (made if absent) with an empty
    /// manifest. Fails if a manifest already exists there.
    pub fn create<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_error(&dir))?;
        let path = manifest::manifest_path(&dir);
        if path.exists() {
            return Err(CorpusError::Manifest {
                details: format!("{} already exists", path.display()),
            });
        }
        manifest::write(&dir, &[], 1)?;
        Ok(Self::from_parts(dir, Vec::new(), 1))
    }

    /// Open an existing corpus directory (its manifest must exist). A
    /// leftover rewrite temporary from a crashed update is discarded —
    /// the renamed manifest is the only source of truth.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (entries, generation) = manifest::read(&dir)?;
        manifest::clean_stale_tmp(&dir);
        let corpus = Self::from_parts(dir, entries, generation);
        corpus.recover_live_docs()?;
        Ok(corpus)
    }

    /// Open the corpus at `dir`, creating it when no manifest exists yet.
    pub fn open_or_create<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let path = manifest::manifest_path(dir.as_ref());
        if path.exists() {
            Self::open(dir)
        } else {
            Self::create(dir)
        }
    }

    fn from_parts(dir: PathBuf, entries: Vec<DocumentEntry>, generation: u64) -> Self {
        Self {
            dir,
            membership: RwLock::new(Membership {
                entries,
                generation,
                departed: HashMap::new(),
            }),
            budget: DEFAULT_BUDGET_BYTES,
            threads: 0,
            mmap: false,
            cache: Mutex::new(EngineCache::default()),
            batch: OnceLock::new(),
            live: RwLock::new(live::LiveMap::new()),
            live_opts: live::LiveOptions::default(),
            live_bytes: live::LiveBytes::new(0),
            freeze_hist: live::FreezeHist::default(),
        }
    }

    /// Set the warm-engine cache budget (resident count-index bytes).
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.set_budget(bytes);
        self
    }

    /// Set the worker count used for concurrent dispatch (`0` = all
    /// cores). Takes effect before the first concurrent query spawns the
    /// shared pool.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Serve snapshots through the zero-copy mmap loader
    /// ([`Engine::load_snapshot_mmap`]): the engine borrows its count
    /// sections from a page-cache mapping, answers its first query
    /// before the index is fully paged in, and only charges the cache
    /// budget once that query's verification pass has faulted it in. On
    /// targets without the mmap wrapper this quietly falls back to bulk
    /// reads (and the `mmap_loads` counter stays at zero).
    pub fn with_mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Change the cache budget; over-budget engines are evicted on the
    /// next load, not eagerly.
    pub fn set_budget(&mut self, bytes: usize) {
        self.budget = bytes;
    }

    /// Switch the snapshot loader for *future* cold loads (see
    /// [`Corpus::with_mmap`]); already-warm engines are untouched.
    pub fn set_mmap(&mut self, mmap: bool) {
        self.mmap = mmap;
    }

    /// Whether cold loads go through the zero-copy mmap loader.
    pub fn mmap_enabled(&self) -> bool {
        self.mmap
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The warm-engine cache budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of documents in the corpus.
    pub fn len(&self) -> usize {
        self.membership
            .read()
            .expect("membership poisoned")
            .entries
            .len()
    }

    /// Whether the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the manifest entries, in corpus (document-index)
    /// order. The snapshot is a point-in-time copy: a concurrent
    /// [`Corpus::refresh`] does not mutate it under the caller.
    pub fn entries(&self) -> Vec<DocumentEntry> {
        self.membership
            .read()
            .expect("membership poisoned")
            .entries
            .clone()
    }

    /// The manifest generation: bumped on every successful membership
    /// change, persisted across restarts (`0` only for corpora written
    /// before generations existed and never updated since).
    pub fn generation(&self) -> u64 {
        self.membership
            .read()
            .expect("membership poisoned")
            .generation
    }

    /// The document index of `name`, if present.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.membership
            .read()
            .expect("membership poisoned")
            .entries
            .iter()
            .position(|e| e.name == name)
    }

    /// If `name` belonged to an earlier generation of this corpus and
    /// has since been removed or migrated away, the generation that
    /// dropped it. `None` for current members and never-seen names.
    pub fn departed(&self, name: &str) -> Option<u64> {
        self.membership
            .read()
            .expect("membership poisoned")
            .departed
            .get(name)
            .copied()
    }

    /// Re-read the manifest from disk and adopt it if its generation is
    /// newer than the in-memory view. This is how a *serving* corpus
    /// follows membership changes written by another process (a live
    /// rebalance): entries that left or changed get their warm engines
    /// evicted (in-flight `Arc<Engine>` handles keep answering), names
    /// that left are recorded as departed, and names that rejoined are
    /// un-tombstoned. Returns whether anything changed. Cheap when
    /// nothing changed: one small-file read and a generation compare.
    pub fn refresh(&self) -> Result<bool> {
        let path = manifest::manifest_path(&self.dir);
        let text = std::fs::read_to_string(&path).map_err(io_error(&path))?;
        let disk_generation = manifest::parse_generation(&text);
        if disk_generation
            == self
                .membership
                .read()
                .expect("membership poisoned")
                .generation
        {
            return Ok(false);
        }
        let entries = manifest::parse(&text)?;
        let mut membership = self.membership.write().expect("membership poisoned");
        // Re-check under the write lock: a racing refresher (or our own
        // writer) may have adopted this — or a newer — generation first.
        if disk_generation <= membership.generation {
            return Ok(false);
        }
        let old = std::mem::replace(&mut membership.entries, entries);
        membership.generation = disk_generation;
        let mut evict: Vec<String> = Vec::new();
        let mut departures: Vec<String> = Vec::new();
        for previous in &old {
            match membership.entries.iter().find(|e| e.name == previous.name) {
                Some(current) if current == previous => {}
                Some(_) => evict.push(previous.name.clone()),
                None => {
                    evict.push(previous.name.clone());
                    departures.push(previous.name.clone());
                }
            }
        }
        for name in &departures {
            note_departed(&mut membership, name, disk_generation);
        }
        let rejoined: Vec<String> = membership
            .entries
            .iter()
            .filter(|e| membership.departed.contains_key(&e.name))
            .map(|e| e.name.clone())
            .collect();
        for name in rejoined {
            membership.departed.remove(&name);
        }
        drop(membership);
        let mut cache = self.cache.lock().expect("corpus cache poisoned");
        for name in evict {
            cache.remove(&name);
        }
        drop(cache);
        // Keep the live-document map in step with the adopted
        // membership: departed names stop accepting appends (their
        // files now belong to the manifest's new owner), and entries
        // that arrived with a sidecar become appendable here without a
        // restart. Adoption is best-effort — a corrupt sidecar demotes
        // the document to static serving rather than failing the
        // refresh for everyone else.
        for name in &departures {
            self.detach_live_doc(name);
        }
        self.recover_live_docs().ok();
        Ok(true)
    }

    /// Cache observability counters.
    pub fn cache_stats(&self) -> CacheStats {
        let mut cache = self.cache.lock().expect("corpus cache poisoned");
        cache.refresh();
        CacheStats {
            hits: cache.hits,
            loads: cache.loads,
            mmap_loads: cache.mmap_loads,
            read_loads: cache.read_loads,
            evictions: cache.evictions,
            lazy_verifications: cache.lazy_verifications(),
            resident: cache.map.len(),
            resident_bytes: cache.resident_bytes,
        }
    }

    /// Resident count-index bytes across warm engines.
    pub fn resident_bytes(&self) -> usize {
        let mut cache = self.cache.lock().expect("corpus cache poisoned");
        cache.refresh();
        cache.resident_bytes
    }

    fn shared_batch(&self) -> &Batch {
        self.batch.get_or_init(|| Batch::new(self.threads))
    }

    fn snapshot_path(&self, entry: &DocumentEntry) -> PathBuf {
        self.dir.join(&entry.file)
    }

    // -- Membership --------------------------------------------------------

    /// Index `seq` under `model` in `layout`, write the snapshot into the
    /// corpus directory, and register it in the manifest. The freshly
    /// built engine is retained warm (subject to the budget), so an
    /// immediately following query pays no load.
    pub fn add_document(
        &mut self,
        name: &str,
        seq: &Sequence,
        model: Model,
        layout: CountsLayout,
    ) -> Result<()> {
        manifest::validate_name(name)?;
        if self.position(name).is_some() {
            return Err(CorpusError::DuplicateDocument {
                name: name.to_string(),
            });
        }
        let engine = Engine::with_layout(seq, model, layout)?;
        self.install_document(name, engine)
    }

    /// Register an already-built engine as a document (snapshot written,
    /// manifest updated, engine retained warm). The corpus-facing sibling
    /// of [`Engine::write_snapshot`] for callers that built the engine
    /// themselves (e.g. from a frozen stream).
    pub fn add_engine(&mut self, name: &str, engine: Engine) -> Result<()> {
        manifest::validate_name(name)?;
        if self.position(name).is_some() {
            return Err(CorpusError::DuplicateDocument {
                name: name.to_string(),
            });
        }
        self.install_document(name, engine)
    }

    fn install_document(&mut self, name: &str, engine: Engine) -> Result<()> {
        self.install_document_as(name, format!("{name}.snap"), engine)
    }

    fn install_document_as(&mut self, name: &str, file: String, engine: Engine) -> Result<()> {
        let path = self.dir.join(&file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        engine.write_snapshot_path(&tmp)?;
        std::fs::rename(&tmp, &path).map_err(io_error(&path))?;
        let mut membership = self.membership.write().expect("membership poisoned");
        membership.entries.push(DocumentEntry {
            name: name.to_string(),
            file,
            k: engine.k(),
            n: engine.n(),
            layout: engine.layout(),
        });
        if let Err(e) = manifest::write(&self.dir, &membership.entries, membership.generation + 1) {
            // Roll back membership so the in-memory view matches disk.
            membership.entries.pop();
            std::fs::remove_file(&path).ok();
            return Err(e);
        }
        membership.generation += 1;
        membership.departed.remove(name);
        drop(membership);
        let budget = self.effective_budget();
        self.cache.lock().expect("corpus cache poisoned").insert(
            name.to_string(),
            Arc::new(engine),
            budget,
            LoadKind::Built,
        );
        Ok(())
    }

    /// Remove a document: drop it from the manifest (rewritten
    /// atomically), evict any warm engine, and delete its snapshot file.
    /// An `Arc<Engine>` handle already handed out keeps answering
    /// bit-identically — eviction discards cached pages, never the data
    /// a live handle depends on.
    pub fn remove_document(&mut self, name: &str) -> Result<()> {
        let mut membership = self.membership.write().expect("membership poisoned");
        let index = membership
            .entries
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| CorpusError::UnknownDocument {
                name: name.to_string(),
            })?;
        let entry = membership.entries.remove(index);
        if let Err(e) = manifest::write(&self.dir, &membership.entries, membership.generation + 1) {
            membership.entries.insert(index, entry);
            return Err(e);
        }
        membership.generation += 1;
        let generation = membership.generation;
        note_departed(&mut membership, name, generation);
        drop(membership);
        self.cache
            .lock()
            .expect("corpus cache poisoned")
            .remove(name);
        // Live documents also drop their in-memory tail, sidecar, and
        // retained generation files (a parked watch poller is woken and
        // answers "unknown document").
        self.remove_live_doc(name);
        let path = self.snapshot_path(&entry);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_error(&path)(e)),
        }
    }

    // -- Materialization ---------------------------------------------------

    /// The warm engine for `name`, loading its snapshot on a cache miss
    /// (evicting least-recently-used engines to stay under the budget).
    /// The returned handle stays valid even if the engine is evicted
    /// while the caller still holds it.
    pub fn engine(&self, name: &str) -> Result<Arc<Engine>> {
        let entry = self
            .membership
            .read()
            .expect("membership poisoned")
            .entries
            .iter()
            .find(|e| e.name == name)
            .cloned()
            .ok_or_else(|| CorpusError::UnknownDocument {
                name: name.to_string(),
            })?;
        self.engine_for_entry(&entry)
    }

    /// [`Corpus::engine`] by document index.
    pub fn engine_at(&self, index: usize) -> Result<Arc<Engine>> {
        let entry = self
            .membership
            .read()
            .expect("membership poisoned")
            .entries
            .get(index)
            .cloned()
            .ok_or_else(|| CorpusError::UnknownDocument {
                name: format!("#{index}"),
            })?;
        self.engine_for_entry(&entry)
    }

    /// Materialize the engine for one manifest entry. Callers hold a
    /// point-in-time entry clone, so this stays coherent even when a
    /// concurrent refresh swaps membership mid-batch: a warm engine is
    /// served only if its geometry matches the caller's entry, otherwise
    /// the entry's own snapshot file decides.
    fn engine_for_entry(&self, entry: &DocumentEntry) -> Result<Arc<Engine>> {
        let mut span = sigstr_obs::span("cache");
        span.attr("doc", entry.name.as_str());
        let matches = |engine: &Engine| {
            engine.n() == entry.n && engine.k() == entry.k && engine.layout() == entry.layout
        };
        // Fast path under the lock; the disk load below runs outside it
        // so warm hits on other documents never stall behind a cold
        // multi-second load. Two racing cold callers may both load; the
        // re-check on insert keeps one and drops the duplicate.
        {
            let mut cache = self.cache.lock().expect("corpus cache poisoned");
            if let Some(engine) = cache.touch(&entry.name) {
                if matches(&engine) {
                    span.attr("outcome", "hit");
                    return Ok(engine);
                }
                // The warm engine belongs to a different incarnation of
                // this name; the caller's snapshot file decides below.
            }
        }
        let path = self.snapshot_path(entry);
        let engine = if self.mmap {
            Engine::load_snapshot_mmap(&path)?
        } else {
            Engine::load_snapshot_path(&path)?
        };
        if !matches(&engine) {
            return Err(CorpusError::Manifest {
                details: format!(
                    "snapshot {} geometry (n = {}, k = {}, {:?}) disagrees with the manifest \
                     (n = {}, k = {}, {:?})",
                    path.display(),
                    engine.n(),
                    engine.k(),
                    engine.layout(),
                    entry.n,
                    entry.k,
                    entry.layout
                ),
            });
        }
        // `is_mmap` (not the request flag) drives the split counters, so
        // the fallback on targets without the mmap wrapper is visible.
        let kind = if engine.is_mmap() {
            LoadKind::Mapped
        } else {
            LoadKind::Read
        };
        span.attr("outcome", "load");
        span.attr(
            "loader",
            match kind {
                LoadKind::Mapped => "mmap",
                LoadKind::Read => "read",
                LoadKind::Built => "built",
            },
        );
        let engine = Arc::new(engine);
        let mut cache = self.cache.lock().expect("corpus cache poisoned");
        if let Some(existing) = cache.touch(&entry.name) {
            if matches(&existing) {
                // Another caller finished loading first — serve its
                // engine and let this duplicate drop.
                return Ok(existing);
            }
            // The cache holds a different incarnation (newer membership);
            // serve our load without clobbering it.
            return Ok(engine);
        }
        cache.insert(
            entry.name.clone(),
            Arc::clone(&engine),
            self.effective_budget(),
            kind,
        );
        Ok(engine)
    }

    // -- Queries -----------------------------------------------------------

    /// Answer one query against one named document.
    pub fn query(&self, name: &str, query: &Query) -> Result<Answer> {
        let engine = self.engine(name)?;
        let mut span = sigstr_obs::span("scan");
        span.attr("doc", name);
        span.attr("simd", sigstr_core::simd::level().name());
        let answer = engine.answer(query).map_err(CorpusError::Core)?;
        let stats = answer.stats();
        span.attr_u64("examined", stats.examined);
        span.attr_u64("skips", stats.skips);
        span.attr_u64("skipped", stats.skipped);
        Ok(answer)
    }

    /// Answer `query` against every document, dispatched concurrently
    /// over the shared worker pool. Results come back in document order;
    /// each slot carries that document's answer or its own error (a
    /// failed snapshot load or a per-document query rejection never takes
    /// down the rest of the corpus).
    pub fn query_all(&self, query: &Query) -> Vec<Result<Answer>> {
        let entries = self.entries();
        self.run_batch_on(
            &entries,
            &(0..entries.len())
                .map(|doc| (doc, *query))
                .collect::<Vec<_>>(),
        )
    }

    /// The PR 2 batch driver wired through the corpus: answer every
    /// `(document-index, query)` job over cached engines and the shared
    /// pool. Answers come back in job order. Repeated batch runs over the
    /// same corpus reuse warm engines instead of rebuilding one per
    /// input per run.
    pub fn run_batch_indexed(&self, jobs: &[(usize, Query)]) -> Vec<Result<Answer>> {
        self.run_batch_on(&self.entries(), jobs)
    }

    /// [`Corpus::run_batch_indexed`] against one point-in-time membership
    /// snapshot. All index resolution happens against `entries`, so a
    /// concurrent [`Corpus::refresh`] (live rebalance adopting an
    /// externally-rewritten manifest) cannot shift document indices under
    /// a batch mid-flight — in-flight batches complete against the
    /// membership they started with, bit-identically.
    fn run_batch_on(
        &self,
        entries: &[DocumentEntry],
        jobs: &[(usize, Query)],
    ) -> Vec<Result<Answer>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Materialize each referenced document once. Cold loads run
        // concurrently (engine_for_entry loads outside the cache lock, so
        // a batch cold start pays max-of-loads, not sum-of-loads).
        let mut referenced: Vec<usize> = jobs
            .iter()
            .map(|&(doc, _)| doc)
            .filter(|&doc| doc < entries.len())
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        let mut engines: Vec<Option<Arc<Engine>>> = vec![None; entries.len()];
        let mut load_errors: HashMap<usize, CorpusError> = HashMap::new();
        let loaded: Vec<(usize, Result<Arc<Engine>>)> = if referenced.len() <= 1 {
            referenced
                .iter()
                .map(|&doc| (doc, self.engine_for_entry(&entries[doc])))
                .collect()
        } else {
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let collected = Mutex::new(Vec::with_capacity(referenced.len()));
            let workers = referenced.len().min(MAX_CONCURRENT_LOADS);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&doc) = referenced.get(i) else {
                            break;
                        };
                        let result = self.engine_for_entry(&entries[doc]);
                        collected
                            .lock()
                            .expect("loader results")
                            .push((doc, result));
                    });
                }
            });
            collected.into_inner().expect("loader results")
        };
        for (doc, result) in loaded {
            match result {
                Ok(engine) => engines[doc] = Some(engine),
                Err(e) => {
                    load_errors.insert(doc, e);
                }
            }
        }
        // Compact to the loaded engines and remap job indices onto them.
        let mut dense: Vec<Arc<Engine>> = Vec::new();
        let mut dense_index: Vec<Option<usize>> = vec![None; entries.len()];
        for (doc, slot) in engines.into_iter().enumerate() {
            if let Some(engine) = slot {
                dense_index[doc] = Some(dense.len());
                dense.push(engine);
            }
        }
        let mut dispatch: Vec<(usize, Query)> = Vec::with_capacity(jobs.len());
        let mut slot_of_job: Vec<Option<usize>> = Vec::with_capacity(jobs.len());
        for &(doc, query) in jobs {
            match dense_index.get(doc).copied().flatten() {
                Some(dense_doc) => {
                    slot_of_job.push(Some(dispatch.len()));
                    dispatch.push((dense_doc, query));
                }
                None => slot_of_job.push(None),
            }
        }
        let mut answers = self
            .shared_batch()
            .run_on(&dense, &dispatch)
            .into_iter()
            .map(Some)
            .collect::<Vec<_>>();
        jobs.iter()
            .zip(slot_of_job)
            .map(|(&(doc, _), slot)| match slot {
                Some(s) => answers[s]
                    .take()
                    .expect("each dispatch slot consumed once")
                    .map_err(CorpusError::Core),
                None => Err(match load_errors.get(&doc) {
                    Some(e) => e.clone(),
                    None => CorpusError::UnknownDocument {
                        name: format!("#{doc}"),
                    },
                }),
            })
            .collect()
    }

    /// [`Corpus::run_batch_indexed`] with documents addressed by name.
    pub fn run_batch(&self, jobs: &[(&str, Query)]) -> Vec<Result<Answer>> {
        let indexed: Vec<(usize, Query)> = jobs
            .iter()
            .map(|(name, query)| (self.position(name).unwrap_or(usize::MAX), *query))
            .collect();
        self.run_batch_indexed(&indexed)
            .into_iter()
            .zip(jobs)
            .map(|(result, (name, _))| {
                result.map_err(|e| match e {
                    CorpusError::UnknownDocument { .. } => CorpusError::UnknownDocument {
                        name: name.to_string(),
                    },
                    other => other,
                })
            })
            .collect()
    }

    /// The corpus-wide top-t: every document's `top_t(t)` mined
    /// concurrently, merged by [`merge_ranked`] — **bit-identical** to
    /// brute-force per-document mining plus that explicit merge. Fails if
    /// any document fails (a partial merge would silently misrank).
    pub fn top_t_merged(&self, t: usize) -> Result<Vec<DocHit>> {
        let entries = self.entries();
        let answers = self.run_batch_on(
            &entries,
            &(0..entries.len())
                .map(|doc| (doc, Query::top_t(t)))
                .collect::<Vec<_>>(),
        );
        let mut per_doc: Vec<(usize, &str, Vec<Scored>)> = Vec::with_capacity(answers.len());
        for (doc, answer) in answers.into_iter().enumerate() {
            match answer? {
                Answer::Top(r) => per_doc.push((doc, entries[doc].name.as_str(), r.items)),
                other => unreachable!("top_t query produced {other:?}"),
            }
        }
        let borrowed: Vec<(usize, &str, &[Scored])> = per_doc
            .iter()
            .map(|(doc, name, items)| (*doc, *name, items.as_slice()))
            .collect();
        Ok(merge_ranked(&borrowed, t))
    }

    /// The corpus-wide threshold set: every document's substrings with
    /// `X² > alpha`, mined concurrently, concatenated in document order
    /// (each document's items in its canonical order).
    pub fn above_threshold_merged(&self, alpha: f64) -> Result<Vec<DocHit>> {
        let entries = self.entries();
        let answers = self.run_batch_on(
            &entries,
            &(0..entries.len())
                .map(|doc| (doc, Query::above_threshold(alpha)))
                .collect::<Vec<_>>(),
        );
        let mut hits = Vec::new();
        for (doc, answer) in answers.into_iter().enumerate() {
            match answer? {
                Answer::Threshold(r) => hits.extend(r.items.into_iter().map(|item| DocHit {
                    doc,
                    name: entries[doc].name.clone(),
                    item,
                })),
                other => unreachable!("threshold query produced {other:?}"),
            }
        }
        Ok(hits)
    }
}

// Compile-time thread-safety contract: the server shares one `Corpus`
// across its whole worker pool by `&self`, so an accidental `!Sync`
// field must fail the build here, not at a spawn site.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Corpus>();
    require_send_sync::<Arc<Engine>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sigstr-corpus-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn doc(seed: u64, n: usize, k: usize) -> Sequence {
        let mut x = seed | 1;
        let symbols: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % k as u64) as u8
            })
            .collect();
        Sequence::from_symbols(symbols, k).unwrap()
    }

    #[test]
    fn create_open_add_remove() {
        let dir = temp_dir("lifecycle");
        let mut corpus = Corpus::create(&dir).unwrap();
        assert!(corpus.is_empty());
        // A second create refuses to clobber.
        assert!(Corpus::create(&dir).is_err());

        let model = Model::uniform(3).unwrap();
        corpus
            .add_document("a", &doc(1, 200, 3), model.clone(), CountsLayout::Flat)
            .unwrap();
        corpus
            .add_document("b", &doc(2, 300, 3), model.clone(), CountsLayout::Blocked)
            .unwrap();
        assert_eq!(corpus.len(), 2);
        assert!(matches!(
            corpus.add_document("a", &doc(3, 50, 3), model.clone(), CountsLayout::Flat),
            Err(CorpusError::DuplicateDocument { .. })
        ));
        assert!(matches!(
            corpus.add_document("bad/name", &doc(3, 50, 3), model, CountsLayout::Flat),
            Err(CorpusError::InvalidName { .. })
        ));

        // Reopen from disk: membership and geometry persist.
        let reopened = Corpus::open(&dir).unwrap();
        assert_eq!(reopened.entries(), corpus.entries());
        assert_eq!(reopened.entries()[0].layout, CountsLayout::Flat);
        assert_eq!(reopened.entries()[1].layout, CountsLayout::Blocked);
        let engine = reopened.engine("b").unwrap();
        assert_eq!(engine.n(), 300);

        corpus.remove_document("a").unwrap();
        assert_eq!(corpus.len(), 1);
        assert!(!dir.join("a.snap").exists());
        assert!(matches!(
            corpus.remove_document("a"),
            Err(CorpusError::UnknownDocument { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_load_and_lru_eviction() {
        let dir = temp_dir("lru");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        for (i, name) in ["x", "y", "z"].iter().enumerate() {
            corpus
                .add_document(
                    name,
                    &doc(10 + i as u64, 2000, 2),
                    model.clone(),
                    CountsLayout::Flat,
                )
                .unwrap();
        }
        let one_engine_bytes = corpus.engine("x").unwrap().index_bytes();
        // Budget for two engines: loading all three must evict one.
        let mut corpus = Corpus::open(&dir)
            .unwrap()
            .with_budget(2 * one_engine_bytes + 16);
        for name in ["x", "y", "z"] {
            corpus.engine(name).unwrap();
        }
        let stats = corpus.cache_stats();
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes <= corpus.budget());
        // `x` was the least recently used → evicted; `z` is warm.
        corpus.engine("z").unwrap();
        assert_eq!(corpus.cache_stats().hits, 1);
        corpus.engine("x").unwrap();
        assert_eq!(corpus.cache_stats().loads, 4);
        // An evicted handle handed out earlier keeps answering.
        corpus.set_budget(1);
        let handle = corpus.engine("y").unwrap();
        corpus.engine("z").unwrap(); // evicts everything else
        assert!(handle.mss().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: removing a document that was never materialized (no
    /// warm engine — e.g. added by another process and never queried
    /// here) must leave `CacheStats` untouched. In particular it must
    /// NOT count as a cache eviction: `evictions` tracks budget
    /// pressure, and inflating it with membership churn would make the
    /// "is my budget too small?" signal unreadable.
    #[test]
    fn remove_never_materialized_document_is_not_an_eviction() {
        let dir = temp_dir("remove-cold");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        corpus
            .add_document("warm", &doc(71, 400, 2), model.clone(), CountsLayout::Flat)
            .unwrap();
        corpus
            .add_document("cold", &doc(72, 400, 2), model, CountsLayout::Flat)
            .unwrap();
        // Reopen so nothing is warm, then materialize only `warm`.
        let mut corpus = Corpus::open(&dir).unwrap();
        corpus.engine("warm").unwrap();
        let before = corpus.cache_stats();
        assert_eq!(before.resident, 1);

        // `cold` has no cached engine: removing it is pure membership
        // work and must not move any cache counter.
        corpus.remove_document("cold").unwrap();
        let after = corpus.cache_stats();
        assert_eq!(after.evictions, before.evictions, "not an LRU eviction");
        assert_eq!(after.resident, before.resident);
        assert_eq!(after.resident_bytes, before.resident_bytes);
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.loads, before.loads);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: removing a document must evict its warm engine and
    /// give back its `resident_bytes` — and re-adding a document under
    /// the same name must serve the *new* content, never a stale cached
    /// engine.
    #[test]
    fn remove_document_evicts_warm_engine_and_accounting() {
        let dir = temp_dir("remove-evict");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        corpus
            .add_document("keep", &doc(61, 500, 2), model.clone(), CountsLayout::Flat)
            .unwrap();
        corpus
            .add_document("gone", &doc(62, 800, 2), model.clone(), CountsLayout::Flat)
            .unwrap();
        // Both engines are warm from the add path.
        let gone_bytes = corpus.engine("gone").unwrap().index_bytes();
        let before = corpus.cache_stats();
        assert_eq!(before.resident, 2);

        corpus.remove_document("gone").unwrap();
        let after = corpus.cache_stats();
        assert_eq!(after.resident, 1, "engine must leave the cache");
        assert_eq!(
            after.resident_bytes,
            before.resident_bytes - gone_bytes,
            "resident_bytes must drop by exactly the evicted engine's bytes"
        );
        assert_eq!(corpus.resident_bytes(), after.resident_bytes);
        // The removal is not an LRU eviction: the eviction counter moves
        // only for budget-driven evictions.
        assert_eq!(after.evictions, before.evictions);

        // Re-adding the same name with different content serves the new
        // document (from the warm insert and across a reopen).
        corpus
            .add_document(
                "gone",
                &doc(63, 300, 2),
                model.clone(),
                CountsLayout::Blocked,
            )
            .unwrap();
        assert_eq!(corpus.engine("gone").unwrap().n(), 300);
        assert_eq!(
            corpus.engine("gone").unwrap().layout(),
            CountsLayout::Blocked
        );
        let direct = Engine::new(&doc(63, 300, 2), model.clone()).unwrap();
        match corpus.query("gone", &Query::mss()).unwrap() {
            Answer::Best(r) => assert_eq!(r, direct.mss().unwrap()),
            other => panic!("unexpected answer {other:?}"),
        }
        let reopened = Corpus::open(&dir).unwrap();
        assert_eq!(reopened.engine("gone").unwrap().n(), 300);
        // Accounting still adds up after the churn: resident bytes equal
        // the sum of the warm engines' index bytes.
        let stats = corpus.cache_stats();
        let expected: usize = ["keep", "gone"]
            .iter()
            .map(|name| corpus.engine(name).unwrap().index_bytes())
            .sum();
        assert_eq!(stats.resident_bytes, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queries_match_direct_engines() {
        let dir = temp_dir("query");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        let docs = [doc(21, 400, 2), doc(22, 500, 2)];
        corpus
            .add_document("d0", &docs[0], model.clone(), CountsLayout::Flat)
            .unwrap();
        corpus
            .add_document("d1", &docs[1], model.clone(), CountsLayout::Blocked)
            .unwrap();

        let answers = corpus.query_all(&Query::mss());
        assert_eq!(answers.len(), 2);
        for (d, answer) in docs.iter().zip(&answers) {
            let direct = Engine::new(d, model.clone()).unwrap().mss().unwrap();
            match answer.as_ref().unwrap() {
                Answer::Best(r) => assert_eq!(*r, direct),
                other => panic!("unexpected answer {other:?}"),
            }
        }

        // Named single-document query.
        let one = corpus.query("d1", &Query::top_t(3)).unwrap();
        assert_eq!(one.items().len(), 3);
        assert!(matches!(
            corpus.query("nope", &Query::mss()),
            Err(CorpusError::UnknownDocument { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_jobs_reuse_cached_engines() {
        let dir = temp_dir("batch");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        corpus
            .add_document("a", &doc(31, 300, 2), model.clone(), CountsLayout::Flat)
            .unwrap();
        corpus
            .add_document("b", &doc(32, 300, 2), model, CountsLayout::Flat)
            .unwrap();
        let jobs = [
            ("a", Query::mss()),
            ("b", Query::top_t(2)),
            ("a", Query::mss_max_length(5)),
            ("missing", Query::mss()),
        ];
        let loads_before = corpus.cache_stats().loads;
        let answers = corpus.run_batch(&jobs);
        assert_eq!(answers.len(), 4);
        assert!(answers[0].is_ok() && answers[1].is_ok() && answers[2].is_ok());
        assert!(matches!(
            answers[3].as_ref().unwrap_err(),
            CorpusError::UnknownDocument { name } if name == "missing"
        ));
        // Both documents were added warm: repeated batches never reload.
        let answers2 = corpus.run_batch(&jobs[..3]);
        assert_eq!(corpus.cache_stats().loads, loads_before);
        for (a, b) in answers2.iter().zip(&answers) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_top_t_is_brute_force_merge() {
        let dir = temp_dir("merge");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        let docs = [doc(41, 350, 2), doc(42, 250, 2), doc(43, 450, 2)];
        for (i, d) in docs.iter().enumerate() {
            corpus
                .add_document(
                    &format!("doc{i}"),
                    d,
                    model.clone(),
                    if i % 2 == 0 {
                        CountsLayout::Flat
                    } else {
                        CountsLayout::Blocked
                    },
                )
                .unwrap();
        }
        let t = 5;
        let merged = corpus.top_t_merged(t).unwrap();
        assert_eq!(merged.len(), t);

        // Brute force: independent engines, explicit merge.
        let per_doc: Vec<Vec<Scored>> = docs
            .iter()
            .map(|d| {
                Engine::new(d, model.clone())
                    .unwrap()
                    .top_t(t)
                    .unwrap()
                    .items
            })
            .collect();
        let borrowed: Vec<(usize, &str, &[Scored])> = per_doc
            .iter()
            .enumerate()
            .map(|(i, items)| (i, "", items.as_slice()))
            .collect();
        let brute = merge_ranked(&borrowed, t);
        for (a, b) in merged.iter().zip(&brute) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.item.start, b.item.start);
            assert_eq!(a.item.end, b.item.end);
            assert_eq!(a.item.chi_square.to_bits(), b.item.chi_square.to_bits());
        }

        // Threshold merge: per-document canonical sets in doc order.
        let alpha = 4.0;
        let merged = corpus.above_threshold_merged(alpha).unwrap();
        let mut expected = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            let items = Engine::new(d, model.clone())
                .unwrap()
                .above_threshold(alpha)
                .unwrap()
                .items;
            expected.extend(items.into_iter().map(|item| (i, item)));
        }
        assert_eq!(merged.len(), expected.len());
        for (hit, (doc, item)) in merged.iter().zip(&expected) {
            assert_eq!(hit.doc, *doc);
            assert_eq!(hit.item.chi_square.to_bits(), item.chi_square.to_bits());
            assert_eq!((hit.item.start, hit.item.end), (item.start, item.end));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Mmap serving: loads are counted separately, a mapped engine stays
    /// off the budget until its first query faults the index in, and
    /// eviction hands its pages back while held handles keep answering.
    #[test]
    fn mmap_loads_defer_residency_and_discard_on_evict() {
        let dir = temp_dir("mmap");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        for (i, name) in ["m0", "m1"].iter().enumerate() {
            corpus
                .add_document(
                    name,
                    &doc(70 + i as u64, 2000, 2),
                    model.clone(),
                    if i == 0 {
                        CountsLayout::Flat
                    } else {
                        CountsLayout::Blocked
                    },
                )
                .unwrap();
        }
        let direct: Vec<_> = ["m0", "m1"]
            .iter()
            .map(|name| {
                Engine::load_snapshot_path(dir.join(format!("{name}.snap")))
                    .unwrap()
                    .mss()
                    .unwrap()
            })
            .collect();

        let corpus = Corpus::open(&dir).unwrap().with_mmap(true);
        assert!(corpus.mmap_enabled());
        let m0 = corpus.engine("m0").unwrap();
        if !m0.is_mmap() {
            // Target without the mmap wrapper: the fallback bulk-read
            // path is covered by every other test.
            std::fs::remove_dir_all(&dir).ok();
            return;
        }
        let stats = corpus.cache_stats();
        assert_eq!((stats.mmap_loads, stats.read_loads), (1, 0));
        assert_eq!(stats.resident_bytes, 0, "unqueried mapping is free");
        assert_eq!(stats.lazy_verifications, 0);

        // First query verifies lazily and makes the index resident.
        assert_eq!(m0.mss().unwrap(), direct[0]);
        let stats = corpus.cache_stats();
        assert_eq!(stats.lazy_verifications, 1);
        assert_eq!(stats.resident_bytes, m0.index_bytes());

        // A starved budget evicts `m0` when `m1` loads; the eviction
        // discards `m0`'s pages (it reads as non-resident again) but the
        // held handle keeps answering — and re-verifies on next use.
        let mut corpus = corpus;
        corpus.set_budget(1);
        match corpus.query("m1", &Query::mss()).unwrap() {
            Answer::Best(r) => assert_eq!(r, direct[1]),
            other => panic!("unexpected answer {other:?}"),
        }
        let stats = corpus.cache_stats();
        assert_eq!((stats.mmap_loads, stats.read_loads), (2, 0));
        assert!(stats.evictions >= 1);
        assert_eq!(m0.resident_bytes(), 0, "evicted mapping was discarded");
        assert_eq!(m0.mss().unwrap(), direct[0]);
        assert_eq!(m0.lazy_verifications(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_document_errors_stay_in_their_slot() {
        let dir = temp_dir("errors");
        let mut corpus = Corpus::create(&dir).unwrap();
        let model = Model::uniform(2).unwrap();
        corpus
            .add_document("short", &doc(51, 10, 2), model.clone(), CountsLayout::Flat)
            .unwrap();
        corpus
            .add_document("long", &doc(52, 100, 2), model, CountsLayout::Flat)
            .unwrap();
        // minlen:50 is impossible for the 10-symbol document only.
        let answers = corpus.query_all(&Query::mss_min_length(50));
        assert!(answers[0].is_err());
        assert!(answers[1].is_ok());
        // A missing snapshot file errors in its slot; others still answer.
        std::fs::remove_file(dir.join("short.snap")).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        let answers = corpus.query_all(&Query::mss());
        assert!(matches!(answers[0], Err(CorpusError::Core(_))));
        assert!(answers[1].is_ok());
        // But a merged answer refuses to silently drop a document.
        assert!(corpus.top_t_merged(3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
