//! Live-membership safety: a corpus directory rewritten underneath an
//! open handle (the rebalance tool releasing a document while a shard
//! server keeps serving) must never corrupt in-flight answers.
//!
//! The contract under test, in three layers:
//!
//! * [`Corpus::refresh`] adopts external adds/removes and records the
//!   departure generation ([`Corpus::departed`]) for `410 Gone`
//!   answers.
//! * A warm engine — cached in the serving handle, or held as an
//!   `Arc<Engine>` — keeps answering **bit-identically** after another
//!   handle removed the document and deleted its snapshot file.
//! * A batch racing the removal completes every job it started with
//!   the answers it would have produced without the removal.

use std::path::{Path, PathBuf};
use std::sync::mpsc;

use sigstr_core::{Answer, CountsLayout, Model, Query, Sequence};
use sigstr_corpus::{Corpus, CorpusError};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-live-membership-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize, k: usize) -> Sequence {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % k as u64) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

const DOCS: [(&str, u64, usize, usize); 4] = [
    ("bin-a", 3, 420, 2),
    ("bin-b", 4, 380, 2),
    ("tri-c", 5, 360, 3),
    ("tri-d", 6, 300, 3),
];

fn build(dir: &Path) -> Corpus {
    let mut corpus = Corpus::create(dir).unwrap();
    for (name, seed, n, k) in DOCS {
        corpus
            .add_document(
                name,
                &doc(seed, n, k),
                Model::uniform(k).unwrap(),
                CountsLayout::Flat,
            )
            .unwrap();
    }
    corpus
}

fn assert_identical(got: &Answer, want: &Answer, label: &str) {
    assert_eq!(got, want, "{label}: full struct");
    for (a, b) in got.items().iter().zip(want.items()) {
        assert_eq!(
            a.chi_square.to_bits(),
            b.chi_square.to_bits(),
            "{label}: chi-square bits"
        );
    }
}

/// `refresh` adopts adds and removes another handle performed, exactly
/// once, and records the departure generation for the removed name.
#[test]
fn refresh_adopts_external_adds_and_removes() {
    let dir = temp_dir("refresh");
    let mut writer = build(&dir);
    let reader = Corpus::open(&dir).unwrap();
    let before = reader.generation();

    writer.remove_document("bin-a").unwrap();
    writer
        .add_document(
            "quad-e",
            &doc(7, 340, 4),
            Model::uniform(4).unwrap(),
            CountsLayout::Blocked,
        )
        .unwrap();

    // The reader still sees the membership it opened with.
    assert_eq!(reader.len(), DOCS.len());
    assert_eq!(reader.generation(), before);

    assert!(reader.refresh().unwrap(), "a rewrite must be adopted");
    assert_eq!(reader.generation(), before + 2);
    let names: Vec<String> = reader.entries().iter().map(|e| e.name.clone()).collect();
    assert_eq!(names, ["bin-b", "tri-c", "tri-d", "quad-e"]);

    // The departed document 410s with the generation whose adoption
    // dropped it (the reader cannot see intermediate rewrites)...
    assert_eq!(reader.departed("bin-a"), Some(reader.generation()));
    assert!(matches!(
        reader.query("bin-a", &Query::top_t(3)),
        Err(CorpusError::UnknownDocument { .. })
    ));
    // ...the adopted one answers bit-identically to the writer's copy.
    let query = Query::top_t(5);
    assert_identical(
        &reader.query("quad-e", &query).unwrap(),
        &writer.query("quad-e", &query).unwrap(),
        "adopted quad-e",
    );

    // Idempotent: nothing changed on disk, nothing to adopt.
    assert!(!reader.refresh().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

/// The serving contract behind a live rebalance: engines warm in the
/// serving handle — cached or held as an `Arc` — answer bit-identically
/// after another handle removed the document and unlinked its snapshot.
/// Exercised over both snapshot load paths (heap read and mmap).
#[test]
fn warm_engine_survives_external_removal() {
    for mmap in [false, true] {
        let dir = temp_dir(if mmap { "warm-mmap" } else { "warm-heap" });
        let mut writer = build(&dir);
        let reader = Corpus::open(&dir).unwrap().with_mmap(mmap);
        let query = Query::top_t(4);

        // Warm the cache and keep an explicit handle out.
        let baseline = reader.query("bin-a", &query).unwrap();
        let held = reader.engine("bin-a").unwrap();

        writer.remove_document("bin-a").unwrap();
        assert!(
            !dir.join("bin-a.snap").exists(),
            "the snapshot file is gone (mmap={mmap})"
        );

        // Unrefreshed, the reader serves from its warm cache...
        assert_identical(
            &reader.query("bin-a", &query).unwrap(),
            &baseline,
            "warm cache after removal",
        );
        // ...and after adopting the removal, the held `Arc` still
        // answers while the corpus itself reports the departure.
        assert!(reader.refresh().unwrap());
        assert_identical(
            &held.answer(&query).unwrap(),
            &baseline,
            "held Arc after refresh",
        );
        assert!(reader.departed("bin-a").is_some());
        assert!(matches!(
            reader.query("bin-a", &query),
            Err(CorpusError::UnknownDocument { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A batch in flight when another handle removes one of its documents
/// completes every job bit-identically: `run_batch_indexed` resolves
/// its membership snapshot and materializes every engine up front, so
/// the removal can only affect *later* batches.
#[test]
fn remove_mid_batch_completes_bit_identically() {
    let dir = temp_dir("mid-batch");
    let mut writer = build(&dir);
    let reader = Corpus::open(&dir).unwrap();

    // Warm every engine and capture the reference answers.
    let query = Query::top_t(3);
    let baseline: Vec<Answer> = reader
        .query_all(&query)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    // Many rounds over every document: plenty of compute still in
    // flight when the removal lands.
    let jobs: Vec<(usize, Query)> = (0..64)
        .flat_map(|_| (0..DOCS.len()).map(|d| (d, query)))
        .collect();

    let (started_tx, started_rx) = mpsc::channel();
    let answers = std::thread::scope(|scope| {
        let batch = scope.spawn(|| {
            started_tx.send(()).unwrap();
            reader.run_batch_indexed(&jobs)
        });
        started_rx.recv().unwrap();
        writer.remove_document("tri-c").unwrap();
        batch.join().unwrap()
    });

    assert_eq!(answers.len(), jobs.len());
    for (&(d, _), result) in jobs.iter().zip(&answers) {
        assert_identical(
            result.as_ref().unwrap(),
            &baseline[d],
            &format!("mid-batch doc #{d}"),
        );
    }

    // The *next* batch, after adopting the removal, sees the new
    // membership: the removed document errors, the survivors are
    // untouched.
    assert!(reader.refresh().unwrap());
    let gone = reader.position("tri-c");
    assert_eq!(gone, None);
    for (i, (name, ..)) in DOCS.iter().enumerate() {
        let result = reader.query(name, &query);
        if *name == "tri-c" {
            assert!(matches!(result, Err(CorpusError::UnknownDocument { .. })));
        } else {
            assert_identical(&result.unwrap(), &baseline[i], name);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
