//! Live-document lifecycle tests: append → freeze → serve generations →
//! GC, sidecar recovery, sliding-window alerting, and the central
//! bit-exactness contracts:
//!
//! * append-then-freeze answers are **bit-identical** to a fresh engine
//!   over the concatenated sequence, across both `CountsLayout` variants
//!   and the mmap load path (`Answer` compares `f64`s by value, so
//!   `assert_eq!` on answers is exact-bits up to NaN, which X² never is);
//! * a query racing appends and freezes returns an answer bit-identical
//!   to *some* fully-frozen generation — readers are never blocked and
//!   never see a half-frozen state.

use std::path::PathBuf;
use std::time::Duration;

use sigstr_core::engine::{Answer, Query};
use sigstr_core::{CountsLayout, Engine, Model, Sequence};
use sigstr_corpus::{Corpus, CorpusError, LiveOptions, WatchSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-live-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Pseudo-random text over the first `k` lowercase letters.
fn text(seed: u64, n: usize, k: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            b'a' + (x % k as u64) as u8
        })
        .collect()
}

/// Register `name` as a live document built from `initial` text.
fn add_live(corpus: &mut Corpus, name: &str, initial: &[u8], layout: CountsLayout) -> Model {
    let (seq, alphabet) = Sequence::from_text(initial).unwrap();
    let model = Model::estimate(&seq).unwrap();
    corpus
        .add_live_document(name, &seq, &alphabet, model.clone(), layout)
        .unwrap();
    model
}

/// The reference answers: a fresh engine over the full concatenated text.
fn fresh_answers(full_text: &[u8], model: &Model, layout: CountsLayout) -> Vec<Answer> {
    let (seq, _) = Sequence::from_text(full_text).unwrap();
    let engine = Engine::with_layout(&seq, model.clone(), layout).unwrap();
    queries()
        .iter()
        .map(|q| engine.answer(q).unwrap())
        .collect()
}

fn queries() -> Vec<Query> {
    vec![
        Query::mss(),
        Query::top_t(5),
        Query::above_threshold(3.0),
        Query::mss_max_length(12),
        Query::mss().in_range(3, 60),
    ]
}

/// Satellite: append-then-freeze answers are bit-identical to building a
/// fresh engine over the concatenated sequence — across both layouts and
/// both load paths (bulk read and mmap).
#[test]
fn append_then_freeze_bit_identical_to_fresh_engine() {
    for (li, layout) in [CountsLayout::Flat, CountsLayout::Blocked]
        .into_iter()
        .enumerate()
    {
        for k in [2usize, 3] {
            let tag = format!("prop-{li}-{k}");
            let dir = temp_dir(&tag);
            let mut corpus = Corpus::create(&dir).unwrap();
            let initial = text(11 + k as u64, 300, k);
            let model = add_live(&mut corpus, "stream", &initial, layout);

            let mut full = initial.clone();
            for round in 0..4u64 {
                let chunk = text(100 + round, 80 + 17 * round as usize, k);
                corpus.append_live("stream", &chunk).unwrap();
                full.extend_from_slice(&chunk);
            }
            corpus.freeze_live("stream").unwrap().expect("tail froze");

            let expected = fresh_answers(&full, &model, layout);
            for (q, want) in queries().iter().zip(&expected) {
                let got = corpus.query("stream", q).unwrap();
                assert_eq!(&got, want, "warm path, {layout:?} k={k} {q:?}");
            }

            // Cold bulk-read load path.
            let reopened = Corpus::open(&dir).unwrap();
            for (q, want) in queries().iter().zip(&expected) {
                let got = reopened.query("stream", q).unwrap();
                assert_eq!(&got, want, "read path, {layout:?} k={k} {q:?}");
            }

            // Cold mmap load path.
            let mapped = Corpus::open(&dir).unwrap().with_mmap(true);
            for (q, want) in queries().iter().zip(&expected) {
                let got = mapped.query("stream", q).unwrap();
                assert_eq!(&got, want, "mmap path, {layout:?} k={k} {q:?}");
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Queries serve the latest frozen generation: an unfrozen tail is
/// invisible to the read path until its freeze, then becomes visible
/// atomically.
#[test]
fn unfrozen_tail_invisible_until_freeze() {
    let dir = temp_dir("tail-visibility");
    let mut corpus = Corpus::create(&dir).unwrap();
    let initial = text(5, 200, 2);
    let model = add_live(&mut corpus, "log", &initial, CountsLayout::Flat);

    let chunk = text(6, 50, 2);
    let outcome = corpus.append_live("log", &chunk).unwrap();
    assert_eq!(outcome.n, 250);
    assert_eq!(outcome.tail, 50);
    assert!(!outcome.frozen);
    assert_eq!(outcome.generation, 1);

    // Still answering over the 200-symbol generation 1.
    let gen1 = fresh_answers(&initial, &model, CountsLayout::Flat);
    assert_eq!(corpus.query("log", &Query::mss()).unwrap(), gen1[0]);
    match corpus.query("log", &Query::mss()).unwrap() {
        Answer::Best(_) => {}
        other => panic!("unexpected {other:?}"),
    }

    assert_eq!(corpus.freeze_live("log").unwrap(), Some(2));
    let mut full = initial.clone();
    full.extend_from_slice(&chunk);
    let gen2 = fresh_answers(&full, &model, CountsLayout::Flat);
    assert_eq!(corpus.query("log", &Query::mss()).unwrap(), gen2[0]);
    // Freezing an empty tail is a no-op.
    assert_eq!(corpus.freeze_live("log").unwrap(), None);
    std::fs::remove_dir_all(&dir).ok();
}

/// The sidecar makes appends durable across restarts: a reopened corpus
/// resumes with the unfrozen tail intact and keeps appending.
#[test]
fn restart_replays_sidecar_tail() {
    let dir = temp_dir("restart");
    let initial = text(21, 150, 3);
    let chunk1 = text(22, 40, 3);
    let model;
    {
        let mut corpus = Corpus::create(&dir).unwrap();
        model = add_live(&mut corpus, "survivor", &initial, CountsLayout::Blocked);
        corpus.append_live("survivor", &chunk1).unwrap();
        // Dropped here with 40 unfrozen symbols in the tail.
    }
    let corpus = Corpus::open(&dir).unwrap();
    assert!(corpus.is_live("survivor"));
    let status = corpus.live_doc_status("survivor").unwrap();
    assert_eq!(status.generation, 1);
    assert_eq!(status.n, 190);
    assert_eq!(status.tail, 40, "the unfrozen tail survived the restart");

    let chunk2 = text(23, 30, 3);
    corpus.append_live("survivor", &chunk2).unwrap();
    assert_eq!(corpus.freeze_live("survivor").unwrap(), Some(2));
    let mut full = initial.clone();
    full.extend_from_slice(&chunk1);
    full.extend_from_slice(&chunk2);
    let want = fresh_answers(&full, &model, CountsLayout::Blocked);
    assert_eq!(corpus.query("survivor", &Query::mss()).unwrap(), want[0]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Generation GC: only the newest `retain` snapshot files stay on disk,
/// and the manifest always points at the newest.
#[test]
fn generation_gc_honors_retention() {
    let dir = temp_dir("gc");
    let mut corpus = Corpus::create(&dir).unwrap();
    add_live(&mut corpus, "churn", &text(31, 100, 2), CountsLayout::Flat);
    let corpus = corpus.with_live_options(LiveOptions {
        freeze_tail: usize::MAX,
        freeze_age: Duration::from_secs(3600),
        retain: 2,
    });
    for round in 0..5u64 {
        corpus
            .append_live("churn", &text(40 + round, 30, 2))
            .unwrap();
        corpus.freeze_live("churn").unwrap().unwrap();
    }
    // Generations 1..=6 existed; retain=2 keeps 5 and 6.
    assert!(dir.join("churn.g6.snap").exists());
    assert!(dir.join("churn.g5.snap").exists());
    for old in 1..=4u64 {
        assert!(
            !dir.join(format!("churn.g{old}.snap")).exists(),
            "generation {old} should be garbage-collected"
        );
    }
    let entry = corpus
        .entries()
        .into_iter()
        .find(|e| e.name == "churn")
        .unwrap();
    assert_eq!(entry.file, "churn.g6.snap");
    assert_eq!(entry.n, 100 + 5 * 30);

    // Removing the document sweeps the survivors and the sidecar.
    let mut corpus = corpus;
    corpus.remove_document("churn").unwrap();
    assert!(!dir.join("churn.g6.snap").exists());
    assert!(!dir.join("churn.g5.snap").exists());
    assert!(!dir.join("churn.live").exists());
    std::fs::remove_dir_all(&dir).ok();
}

/// Sliding-window watches: a planted anomalous substring alerts, null
/// traffic does not, and the long-poll delivers with a resumption
/// cursor.
#[test]
fn watch_alerts_on_planted_anomaly() {
    let dir = temp_dir("watch");
    let mut corpus = Corpus::create(&dir).unwrap();
    // Uniform-ish alternating background over {a, b}.
    let initial: Vec<u8> = (0..256)
        .map(|i| if i % 2 == 0 { b'a' } else { b'b' })
        .collect();
    add_live(&mut corpus, "events", &initial, CountsLayout::Flat);
    let corpus = corpus.with_live_options(LiveOptions {
        freeze_tail: usize::MAX,
        freeze_age: Duration::from_secs(3600),
        retain: 2,
    });

    let watch = corpus
        .watch_register(
            "events",
            WatchSpec {
                window: 16,
                threshold: 12.0,
                top_t: 4,
            },
        )
        .unwrap();

    // Null traffic: alternating symbols never push X² over 12 in a
    // 16-symbol window.
    let calm: Vec<u8> = (0..64)
        .map(|i| if i % 2 == 0 { b'a' } else { b'b' })
        .collect();
    let outcome = corpus.append_live("events", &calm).unwrap();
    assert!(outcome.alerts.is_empty(), "calm traffic must not alert");

    // An empty poll returns on timeout with the cursor unchanged.
    let empty = corpus
        .watch_poll("events", 0, Duration::from_millis(20))
        .unwrap();
    assert!(empty.alerts.is_empty());
    assert_eq!(empty.next_since, 0);

    // The planted anomaly: a run of 16 `b`s is wildly unlikely under the
    // ~uniform model.
    let outcome = corpus.append_live("events", &[b'b'; 16]).unwrap();
    assert!(!outcome.alerts.is_empty(), "the anomaly must alert");
    assert!(outcome.alerts.len() <= 4, "top_t caps alerts per append");
    assert!(outcome.alerts.iter().all(|a| a.watch == watch));
    let best = outcome.alerts[0];
    assert!(best.item.end - best.item.start <= 16, "window bound");
    assert!(best.item.chi_square > 12.0);

    // The long-poll hands the same alerts out, oldest first, and the
    // cursor resumes past them.
    let batch = corpus
        .watch_poll("events", 0, Duration::from_secs(5))
        .unwrap();
    assert_eq!(batch.alerts, outcome.alerts);
    assert_eq!(batch.next_since, outcome.alerts.last().unwrap().seq);
    let after = corpus
        .watch_poll("events", batch.next_since, Duration::from_millis(20))
        .unwrap();
    assert!(after.alerts.is_empty(), "cursor consumed the alerts");

    let status = corpus.live_doc_status("events").unwrap();
    assert_eq!(status.watches, 1);
    assert_eq!(status.alerts_emitted, outcome.alerts.len() as u64);
    assert_eq!(status.alerts_delivered, outcome.alerts.len() as u64);

    assert!(corpus.watch_unregister("events", watch).unwrap());
    let outcome = corpus.append_live("events", &[b'b'; 16]).unwrap();
    assert!(outcome.alerts.is_empty(), "unregistered watch is silent");
    std::fs::remove_dir_all(&dir).ok();
}

/// A parked long-poll is woken by the append that produces its alert.
#[test]
fn long_poll_wakes_on_append() {
    let dir = temp_dir("longpoll");
    let mut corpus = Corpus::create(&dir).unwrap();
    let initial: Vec<u8> = (0..128)
        .map(|i| if i % 2 == 0 { b'a' } else { b'b' })
        .collect();
    add_live(&mut corpus, "stream", &initial, CountsLayout::Flat);
    let corpus = corpus.with_live_options(LiveOptions {
        freeze_tail: usize::MAX,
        freeze_age: Duration::from_secs(3600),
        retain: 2,
    });
    corpus
        .watch_register(
            "stream",
            WatchSpec {
                window: 12,
                threshold: 8.0,
                top_t: 2,
            },
        )
        .unwrap();

    std::thread::scope(|scope| {
        let poller = scope.spawn(|| {
            corpus
                .watch_poll("stream", 0, Duration::from_secs(30))
                .unwrap()
        });
        // Give the poller a moment to park, then plant the anomaly.
        std::thread::sleep(Duration::from_millis(50));
        corpus.append_live("stream", &[b'a'; 12]).unwrap();
        let batch = poller.join().unwrap();
        assert!(
            !batch.alerts.is_empty(),
            "the poll must return the anomaly's alerts, not time out"
        );
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// Appends are all-or-nothing and alphabet-checked; appends and watches
/// on static or unknown documents fail cleanly.
#[test]
fn append_validation_and_errors() {
    let dir = temp_dir("validation");
    let mut corpus = Corpus::create(&dir).unwrap();
    let model = Model::uniform(2).unwrap();
    let static_seq = Sequence::from_symbols(vec![0, 1, 1, 0], 2).unwrap();
    corpus
        .add_document("static", &static_seq, model, CountsLayout::Flat)
        .unwrap();
    add_live(&mut corpus, "live", &text(51, 100, 2), CountsLayout::Flat);

    // Out-of-alphabet byte rejects the whole append (no partial state).
    let n_before = corpus.live_doc_status("live").unwrap().n;
    let err = corpus.append_live("live", b"abzab").unwrap_err();
    assert!(matches!(err, CorpusError::InvalidAppend { .. }), "{err:?}");
    assert_eq!(corpus.live_doc_status("live").unwrap().n, n_before);

    // Whitespace is skipped, valid bytes land.
    let outcome = corpus.append_live("live", b"ab ba\nab\t").unwrap();
    assert_eq!(outcome.n, n_before + 6);

    assert!(matches!(
        corpus.append_live("static", b"ab"),
        Err(CorpusError::NotLive { .. })
    ));
    assert!(matches!(
        corpus.append_live("ghost", b"ab"),
        Err(CorpusError::UnknownDocument { .. })
    ));
    assert!(matches!(
        corpus.watch_register(
            "live",
            WatchSpec {
                window: 0,
                threshold: 1.0,
                top_t: 1
            }
        ),
        Err(CorpusError::InvalidAppend { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance pin: queries racing appends and freezes always return
/// an answer bit-identical to **some** fully-frozen generation — never a
/// torn or half-frozen view, never an error.
#[test]
fn concurrent_queries_match_some_frozen_generation() {
    let dir = temp_dir("race");
    let mut corpus = Corpus::create(&dir).unwrap();
    let initial = text(61, 400, 2);
    let model = add_live(&mut corpus, "hot", &initial, CountsLayout::Flat);
    let corpus = corpus.with_live_options(LiveOptions {
        freeze_tail: 200,
        freeze_age: Duration::from_secs(3600),
        // Large retention: in this torture test readers deliberately race
        // many generations behind, and the pinned property is about
        // answer bit-exactness, not GC pacing.
        retain: 64,
    });

    // Appends of 100 symbols freeze inline every second append
    // (freeze_tail = 200), so the frozen prefixes are deterministic:
    // 400, 600, 800, ..., 400 + 2 * 100 * rounds.
    const ROUNDS: usize = 10;
    let mut chunks = Vec::new();
    let mut full = initial.clone();
    for r in 0..2 * ROUNDS {
        let chunk = text(70 + r as u64, 100, 2);
        full.extend_from_slice(&chunk);
        chunks.push(chunk);
    }
    let expected: Vec<Answer> = (0..=ROUNDS)
        .map(|g| {
            let prefix = &full[..400 + g * 200];
            let (seq, _) = Sequence::from_text(prefix).unwrap();
            let engine = Engine::with_layout(&seq, model.clone(), CountsLayout::Flat).unwrap();
            engine.answer(&Query::mss()).unwrap()
        })
        .collect();

    // A warm handle taken before the churn must keep answering its own
    // generation bit-exactly, immune to freezes and evictions.
    let gen1_handle = corpus.engine("hot").unwrap();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            readers.push(scope.spawn(|| {
                let mut observed = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let answer = corpus.query("hot", &Query::mss()).unwrap();
                    assert!(
                        expected.contains(&answer),
                        "answer matches no fully-frozen generation: {answer:?}"
                    );
                    observed += 1;
                }
                observed
            }));
        }
        for chunk in &chunks {
            corpus.append_live("hot", chunk).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers must actually have raced the freezes");
    });

    // All freezes happened (ROUNDS freezes past generation 1)...
    let status = corpus.live_doc_status("hot").unwrap();
    assert_eq!(status.generation, 1 + ROUNDS as u64);
    assert_eq!(status.tail, 0);
    // ...the final answer is the newest generation's...
    assert_eq!(
        corpus.query("hot", &Query::mss()).unwrap(),
        expected[ROUNDS]
    );
    // ...and the pre-churn handle still answers generation 1 bit-exactly.
    assert_eq!(
        Answer::Best(gen1_handle.mss().unwrap()),
        expected[0],
        "a warm handle taken before the churn serves its generation forever"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Live tails are charged against the engine-cache budget.
#[test]
fn live_tail_charges_cache_budget() {
    let dir = temp_dir("budget");
    let mut corpus = Corpus::create(&dir).unwrap();
    add_live(
        &mut corpus,
        "tailheavy",
        &text(81, 500, 2),
        CountsLayout::Flat,
    );
    let full_budget = corpus.budget();
    let effective = corpus.effective_budget();
    let status = corpus.live_doc_status("tailheavy").unwrap();
    assert!(status.live_bytes > 0);
    assert_eq!(effective, full_budget - status.live_bytes);

    // Growing the tail shrinks the effective budget further.
    corpus.append_live("tailheavy", &text(82, 200, 2)).unwrap();
    let grown = corpus.live_doc_status("tailheavy").unwrap().live_bytes;
    assert!(grown > status.live_bytes);
    assert_eq!(corpus.effective_budget(), full_budget - grown);

    // Removal gives the budget back.
    corpus.remove_document("tailheavy").unwrap();
    assert_eq!(corpus.effective_budget(), full_budget);
    let stats = corpus.live_stats();
    assert!(stats.docs.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
