//! Crash-safety of the corpus manifest: the atomic-rename rewrite
//! contract, pinned by test instead of by construction.
//!
//! A manifest rewrite goes temp-file → rename. A crash can therefore
//! leave (a) a torn, half-written `corpus.manifest.tmp` next to an
//! intact previous manifest, or (b) no temp at all. It can *never*
//! leave a half-written `corpus.manifest` — these tests simulate every
//! crash window and assert the previous generation is recovered, and
//! that a corpus whose actual manifest *is* torn (the contract broken
//! by outside interference) fails loudly instead of serving a
//! half-membership view.

use std::path::{Path, PathBuf};

use sigstr_core::{CountsLayout, Model, Query, Sequence};
use sigstr_corpus::{manifest, Corpus};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigstr-manifest-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn doc(seed: u64, n: usize) -> Sequence {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let symbols: Vec<u8> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2) as u8
        })
        .collect();
    Sequence::from_symbols(symbols, 2).unwrap()
}

fn build(dir: &Path) -> Corpus {
    let mut corpus = Corpus::create(dir).unwrap();
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        corpus
            .add_document(
                name,
                &doc(i as u64 + 1, 512),
                Model::uniform(2).unwrap(),
                CountsLayout::Flat,
            )
            .unwrap();
    }
    corpus
}

fn manifest_text(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("corpus.manifest")).unwrap()
}

#[test]
fn torn_tmp_rewrite_recovers_the_previous_generation() {
    let dir = temp_dir("torn-tmp");
    let corpus = build(&dir);
    let generation = corpus.generation();
    let entries = corpus.entries().to_vec();
    let reference = corpus.query("alpha", &Query::mss()).unwrap();
    drop(corpus);

    // Simulate a crash mid-rewrite: a later three-document manifest was
    // being written to the temp sibling and died partway — truncate the
    // rendered text mid-line so it is not even parseable.
    let full = manifest_text(&dir);
    let torn = &full[..full.len() - full.len() / 3];
    let tmp = dir.join("corpus.manifest.tmp");
    std::fs::write(&tmp, torn).unwrap();

    // Reopen: the previous manifest (and generation) must be recovered
    // untouched; the torn temp is swept so it cannot confuse anything.
    let reopened = Corpus::open(&dir).unwrap();
    assert_eq!(reopened.generation(), generation);
    assert_eq!(reopened.entries(), entries.as_slice());
    assert!(!tmp.exists(), "stale rewrite temp must be cleaned on open");

    // The recovered corpus still answers, bit-identically.
    let answer = reopened.query("alpha", &Query::mss()).unwrap();
    assert_eq!(answer, reference);

    std::fs::remove_dir_all(&dir).ok();
}

/// The crash window the directory fsync exists for: the rewrite got as
/// far as a fully-written, *valid* temp file, but power was lost before
/// the rename was durable — on replay the filesystem may present the
/// old manifest with the complete new temp still sitting next to it.
/// Recovery must serve the old (renamed-and-fsync'd) generation and
/// sweep the temp; the interrupted update is simply lost, never
/// half-applied.
#[test]
fn completed_tmp_whose_rename_was_lost_recovers_the_old_generation() {
    let dir = temp_dir("lost-rename");
    let corpus = build(&dir);
    let generation = corpus.generation();
    let entries = corpus.entries().to_vec();
    drop(corpus);

    // A complete, parseable next-generation manifest that never made it
    // through a durable rename.
    let next = manifest::render(&entries[..1], generation + 1);
    assert!(manifest::parse(&next).is_ok());
    let tmp = dir.join("corpus.manifest.tmp");
    std::fs::write(&tmp, next).unwrap();

    let reopened = Corpus::open(&dir).unwrap();
    assert_eq!(reopened.generation(), generation);
    assert_eq!(reopened.len(), entries.len());
    assert!(!tmp.exists(), "unrenamed temp must be swept, not adopted");

    std::fs::remove_dir_all(&dir).ok();
}

/// The durable-write path itself: `manifest::write` must leave no temp
/// behind, land the rendered text exactly, and the directory it fsyncs
/// must be fsyncable (a regression here would surface as an `Io` error
/// from every membership change).
#[test]
fn write_is_durable_and_leaves_no_temp() {
    let dir = temp_dir("durable-write");
    let corpus = build(&dir);
    let entries = corpus.entries().to_vec();
    let generation = corpus.generation();
    drop(corpus);

    manifest::write(&dir, &entries, generation + 1).unwrap();
    assert!(!dir.join("corpus.manifest.tmp").exists());
    let (read_back, read_generation) = manifest::read(&dir).unwrap();
    assert_eq!(read_back, entries);
    assert_eq!(read_generation, generation + 1);
    manifest::fsync_dir(&dir).unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewrites_after_recovery_keep_bumping_the_generation() {
    let dir = temp_dir("post-recovery");
    let corpus = build(&dir);
    let generation = corpus.generation();
    drop(corpus);

    // Crash leftovers: garbage temp that never got renamed.
    std::fs::write(dir.join("corpus.manifest.tmp"), b"\x00\xffnot a manifest").unwrap();

    let mut reopened = Corpus::open(&dir).unwrap();
    assert_eq!(reopened.generation(), generation);
    reopened
        .add_document(
            "gamma",
            &doc(9, 512),
            Model::uniform(2).unwrap(),
            CountsLayout::Flat,
        )
        .unwrap();
    assert_eq!(reopened.generation(), generation + 1);
    drop(reopened);

    // The bump is persisted: a fresh open sees the new generation and
    // all three documents.
    let again = Corpus::open(&dir).unwrap();
    assert_eq!(again.generation(), generation + 1);
    assert_eq!(again.len(), 3);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_actual_manifest_fails_loudly() {
    let dir = temp_dir("torn-manifest");
    let corpus = build(&dir);
    drop(corpus);

    // Outside interference (not a crash the rename contract can cause):
    // the manifest itself is truncated mid-line. Opening must error —
    // never silently serve a partial membership list.
    let full = manifest_text(&dir);
    let cut = full
        .rfind('\t')
        .expect("manifest has at least one entry line");
    std::fs::write(dir.join("corpus.manifest"), &full[..cut]).unwrap();
    assert!(Corpus::open(&dir).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_manifests_without_a_generation_line_open_at_zero() {
    let dir = temp_dir("legacy");
    let corpus = build(&dir);
    let entries = corpus.entries().to_vec();
    drop(corpus);

    // Strip the generation comment, as a pre-generation corpus would
    // have written it.
    let stripped: String = manifest_text(&dir)
        .lines()
        .filter(|line| !line.starts_with("# generation"))
        .map(|line| format!("{line}\n"))
        .collect();
    std::fs::write(dir.join("corpus.manifest"), stripped).unwrap();

    let mut reopened = Corpus::open(&dir).unwrap();
    assert_eq!(reopened.generation(), 0);
    assert_eq!(reopened.entries(), entries.as_slice());
    // The next membership change starts the count.
    reopened.remove_document("beta").unwrap();
    assert_eq!(reopened.generation(), 1);
    assert_eq!(manifest::parse_generation(&manifest_text(&dir)), 1);

    std::fs::remove_dir_all(&dir).ok();
}
