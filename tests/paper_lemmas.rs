//! The paper's lemmas and theorems as executable properties (proptest).
//!
//! * Lemma 1 / Theorem 1 — the chain cover bound dominates every
//!   extension.
//! * Lemma 2 — appending the argmax `Y/p` character increases `X²`.
//! * Skip safety — every substring skipped by the solver is at or below
//!   the budget.
//! * Algorithm equivalences under random inputs and models.

use proptest::prelude::*;

use sigstr::core::cover::{best_append_char, extension_upper_bound};
use sigstr::core::skip::max_safe_skip;
use sigstr::core::{
    baseline, chi_square_counts, find_mss, mss_min_length, top_t, Model, PrefixCounts, Sequence,
};

/// Strategy: a random probability vector of size k (entries bounded away
/// from 0 so chi-square stays finite and well-conditioned).
fn model_strategy(k: usize) -> impl Strategy<Value = Model> {
    prop::collection::vec(0.05f64..1.0, k).prop_map(|weights| {
        let total: f64 = weights.iter().sum();
        Model::from_probs(weights.into_iter().map(|w| w / total).collect())
            .expect("normalized positive vector")
    })
}

/// Strategy: a random symbol string over alphabet k.
fn seq_strategy(k: usize, max_len: usize) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(0..k as u8, 1..max_len)
        .prop_map(move |symbols| Sequence::from_symbols(symbols, k).expect("valid symbols"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: for any base count vector and any extension multiset of
    /// size ≤ x, the chain-cover bound dominates.
    #[test]
    fn theorem1_chain_cover_dominates(
        counts in prop::collection::vec(0u32..30, 3),
        adds in prop::collection::vec(0u32..6, 3),
        model in model_strategy(3),
    ) {
        let l: u32 = counts.iter().sum();
        prop_assume!(l > 0);
        let x: u32 = adds.iter().sum();
        prop_assume!(x > 0);
        let bound = extension_upper_bound(&counts, l as usize, &model, x as usize);
        let extended: Vec<u32> = counts.iter().zip(&adds).map(|(&c, &a)| c + a).collect();
        let actual = chi_square_counts(&extended, &model);
        prop_assert!(
            actual <= bound + 1e-7 * (1.0 + bound.abs()),
            "extension {:?}+{:?}: X² {} > bound {}", counts, adds, actual, bound
        );
    }

    /// Lemma 2: appending the argmax Y/p character strictly increases X².
    #[test]
    fn lemma2_append_increases(
        counts in prop::collection::vec(0u32..50, 4),
        model in model_strategy(4),
    ) {
        let l: u32 = counts.iter().sum();
        prop_assume!(l > 0);
        let before = chi_square_counts(&counts, &model);
        let c = best_append_char(&counts, &model);
        let mut extended = counts.clone();
        extended[c] += 1;
        let after = chi_square_counts(&extended, &model);
        prop_assert!(after > before - 1e-12, "Lemma 2 violated: {before} -> {after}");
    }

    /// Skip safety: every extension length 1..=skip stays at or below the
    /// budget (verified against direct enumeration of cover bounds).
    #[test]
    fn skip_solver_is_safe(
        counts in prop::collection::vec(0u32..40, 2),
        budget_scale in 1.1f64..8.0,
        model in model_strategy(2),
    ) {
        let l: u32 = counts.iter().sum();
        prop_assume!(l > 0);
        let x2 = chi_square_counts(&counts, &model);
        let budget = (x2 + 1.0) * budget_scale;
        let skip = max_safe_skip(&counts, l as usize, x2, budget, &model);
        prop_assume!(skip > 0);
        // The Theorem-1 bound at the skip endpoint covers all shorter
        // extensions; verify it directly.
        let bound = extension_upper_bound(&counts, l as usize, &model, skip);
        prop_assert!(bound <= budget + 1e-6 * (1.0 + budget));
    }

    /// The MSS algorithm is exact: equals the trivial scan on random
    /// strings and random models (binary).
    #[test]
    fn mss_equals_trivial_binary(
        seq in seq_strategy(2, 120),
        model in model_strategy(2),
    ) {
        let fast = find_mss(&seq, &model).expect("ours");
        let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        prop_assert!(
            (fast.best.chi_square - slow.best.chi_square).abs()
                <= 1e-9 * (1.0 + slow.best.chi_square),
            "ours {} vs trivial {}", fast.best.chi_square, slow.best.chi_square
        );
    }

    /// Same over a 4-letter alphabet.
    #[test]
    fn mss_equals_trivial_quaternary(
        seq in seq_strategy(4, 80),
        model in model_strategy(4),
    ) {
        let fast = find_mss(&seq, &model).expect("ours");
        let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        prop_assert!(
            (fast.best.chi_square - slow.best.chi_square).abs()
                <= 1e-9 * (1.0 + slow.best.chi_square)
        );
    }

    /// Top-t multiset equivalence on random inputs.
    #[test]
    fn topt_equals_trivial(
        seq in seq_strategy(2, 60),
        t in 1usize..20,
    ) {
        let model = Model::uniform(2).expect("model");
        let fast = top_t(&seq, &model, t).expect("ours");
        let slow = baseline::trivial::top_t(&seq, &model, t).expect("trivial");
        prop_assert_eq!(fast.items.len(), slow.items.len());
        for (f, s) in fast.items.iter().zip(&slow.items) {
            prop_assert!((f.chi_square - s.chi_square).abs() <= 1e-9 * (1.0 + s.chi_square));
        }
    }

    /// Min-length equivalence with random cutoffs.
    #[test]
    fn minlen_equals_trivial(
        seq in seq_strategy(2, 80),
        gamma_frac in 0.0f64..0.95,
    ) {
        let model = Model::uniform(2).expect("model");
        let gamma0 = ((seq.len() as f64) * gamma_frac) as usize;
        prop_assume!(gamma0 < seq.len());
        let fast = mss_min_length(&seq, &model, gamma0).expect("ours");
        let slow = baseline::trivial::mss_min_length(&seq, &model, gamma0).expect("trivial");
        prop_assert!(
            (fast.best.chi_square - slow.best.chi_square).abs()
                <= 1e-9 * (1.0 + slow.best.chi_square)
        );
        prop_assert!(fast.best.len() > gamma0);
    }

    /// X² is invariant under any permutation of the substring (it depends
    /// only on counts — paper §1).
    #[test]
    fn chi_square_order_invariant(
        mut symbols in prop::collection::vec(0u8..3, 2..50),
        rotation in 0usize..49,
        model in model_strategy(3),
    ) {
        let original = Sequence::from_symbols(symbols.clone(), 3).expect("valid");
        let counts = original.count_vector(0, original.len());
        let before = chi_square_counts(&counts, &model);
        let r = rotation % symbols.len();
        symbols.rotate_left(r);
        let rotated = Sequence::from_symbols(symbols, 3).expect("valid");
        let counts2 = rotated.count_vector(0, rotated.len());
        let after = chi_square_counts(&counts2, &model);
        prop_assert!((before - after).abs() <= 1e-9 * (1.0 + before.abs()));
    }

    /// Prefix counts agree with direct counting on arbitrary ranges.
    #[test]
    fn prefix_counts_consistent(
        seq in seq_strategy(3, 100),
        a in 0usize..100,
        b in 0usize..100,
    ) {
        let pc = PrefixCounts::build(&seq);
        let n = seq.len();
        let (start, end) = (a.min(b).min(n), a.max(b).min(n));
        prop_assert_eq!(pc.count_vector(start, end), seq.count_vector(start, end));
    }
}
