//! Cross-algorithm equivalence: the pruned algorithms must agree with the
//! exhaustive baselines on every problem variant, across string families,
//! alphabet sizes and models.

use rand::Rng;
use sigstr::core::{
    above_threshold, baseline, find_mss, find_mss_parallel, mss_min_length, top_t, top_t_parallel,
    Model, Sequence,
};
use sigstr::gen::{dist, generate_iid, seeded_rng, StringKind};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn mss_matches_trivial_across_families() {
    for (i, kind) in [
        StringKind::Null,
        StringKind::Geometric,
        StringKind::Harmonic,
        StringKind::Markov,
    ]
    .into_iter()
    .enumerate()
    {
        for &k in &[2usize, 3, 5] {
            let mut rng = seeded_rng(500 + i as u64 * 10 + k as u64);
            let seq = kind.generate(400, k, &mut rng).expect("generation");
            let model = Model::uniform(k).expect("model");
            let fast = find_mss(&seq, &model).expect("ours");
            let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
            assert!(
                close(fast.best.chi_square, slow.best.chi_square),
                "{kind:?} k={k}: ours {} vs trivial {}",
                fast.best.chi_square,
                slow.best.chi_square
            );
            // Ours must examine no more substrings than trivial.
            assert!(fast.stats.examined <= slow.stats.examined);
        }
    }
}

#[test]
fn mss_matches_trivial_with_skewed_models() {
    let models = [
        dist::geometric(3).expect("model"),
        dist::harmonic(4).expect("model"),
        Model::from_probs(vec![0.9, 0.05, 0.05]).expect("model"),
    ];
    for (i, model) in models.iter().enumerate() {
        let mut rng = seeded_rng(700 + i as u64);
        // Generate from uniform but score against the skewed model: the
        // whole string deviates — a stress case for pruning.
        let seq = generate_iid(300, &Model::uniform(model.k()).expect("model"), &mut rng)
            .expect("generation");
        let fast = find_mss(&seq, model).expect("ours");
        let slow = baseline::trivial::find_mss(&seq, model).expect("trivial");
        assert!(close(fast.best.chi_square, slow.best.chi_square));
    }
}

#[test]
fn top_t_matches_trivial_as_multiset() {
    let mut rng = seeded_rng(800);
    let model = Model::uniform(2).expect("model");
    let seq = generate_iid(250, &model, &mut rng).expect("generation");
    for t in [1usize, 5, 25, 100] {
        let fast = top_t(&seq, &model, t).expect("ours");
        let slow = baseline::trivial::top_t(&seq, &model, t).expect("trivial");
        assert_eq!(fast.items.len(), slow.items.len(), "t = {t}");
        for (f, s) in fast.items.iter().zip(&slow.items) {
            assert!(
                close(f.chi_square, s.chi_square),
                "t = {t}: {} vs {}",
                f.chi_square,
                s.chi_square
            );
        }
    }
}

#[test]
fn threshold_matches_trivial_exactly() {
    let mut rng = seeded_rng(900);
    let model = Model::uniform(3).expect("model");
    let seq = generate_iid(200, &model, &mut rng).expect("generation");
    for alpha in [0.0f64, 2.0, 5.0, 10.0, 20.0] {
        let fast = above_threshold(&seq, &model, alpha).expect("ours");
        let slow = baseline::trivial::above_threshold(&seq, &model, alpha).expect("trivial");
        // Same set of ranges (order may differ).
        let mut f: Vec<(usize, usize)> = fast.items.iter().map(|s| (s.start, s.end)).collect();
        let mut s: Vec<(usize, usize)> = slow.items.iter().map(|s| (s.start, s.end)).collect();
        f.sort_unstable();
        s.sort_unstable();
        assert_eq!(f, s, "alpha = {alpha}");
    }
}

#[test]
fn minlen_matches_trivial() {
    let mut rng = seeded_rng(1000);
    let model = Model::uniform(2).expect("model");
    let seq = generate_iid(300, &model, &mut rng).expect("generation");
    for gamma0 in [0usize, 10, 100, 250, 299] {
        let fast = mss_min_length(&seq, &model, gamma0).expect("ours");
        let slow = baseline::trivial::mss_min_length(&seq, &model, gamma0).expect("trivial");
        assert!(
            close(fast.best.chi_square, slow.best.chi_square),
            "gamma0 = {gamma0}"
        );
        assert!(fast.best.len() > gamma0);
    }
}

#[test]
fn blocked_and_arlm_match_trivial_on_binary() {
    let mut rng = seeded_rng(1100);
    let model = Model::uniform(2).expect("model");
    for _ in 0..10 {
        let n = rng.gen_range(50..400);
        let seq = generate_iid(n, &model, &mut rng).expect("generation");
        let trivial = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        let blocked = baseline::blocked::find_mss(&seq, &model).expect("blocked");
        let arlm = baseline::arlm::find_mss(&seq, &model).expect("arlm");
        assert!(close(trivial.best.chi_square, blocked.best.chi_square));
        assert!(close(trivial.best.chi_square, arlm.best.chi_square));
    }
}

#[test]
fn agmm_is_a_lower_bound_and_fast() {
    let mut rng = seeded_rng(1200);
    let model = Model::uniform(2).expect("model");
    for _ in 0..10 {
        let n = rng.gen_range(50..400);
        let seq = generate_iid(n, &model, &mut rng).expect("generation");
        let trivial = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        let agmm = baseline::agmm::find_mss(&seq, &model).expect("agmm");
        assert!(agmm.best.chi_square <= trivial.best.chi_square + 1e-9);
        assert!(agmm.stats.examined <= 4); // 2k candidates for k = 2
    }
}

#[test]
fn parallel_agrees_with_sequential() {
    let model = Model::uniform(2).expect("model");
    for seed in 0..4u64 {
        let mut rng = seeded_rng(1300 + seed);
        let seq = generate_iid(800, &model, &mut rng).expect("generation");
        let sequential = find_mss(&seq, &model).expect("sequential");
        let parallel = find_mss_parallel(&seq, &model, 4).expect("parallel");
        assert_eq!(sequential.best, parallel.best);

        let st = top_t(&seq, &model, 15).expect("sequential top-t");
        let pt = top_t_parallel(&seq, &model, 15, 4).expect("parallel top-t");
        for (a, b) in st.items.iter().zip(&pt.items) {
            assert!(close(a.chi_square, b.chi_square));
        }
    }
}

#[test]
fn consistency_between_variants() {
    // MSS == top-1 == min-length(0); threshold just below X²_max contains
    // the MSS range.
    let mut rng = seeded_rng(1400);
    let model = Model::uniform(2).expect("model");
    let seq = generate_iid(500, &model, &mut rng).expect("generation");
    let mss = find_mss(&seq, &model).expect("mss");
    let top1 = top_t(&seq, &model, 1).expect("top-1");
    let min0 = mss_min_length(&seq, &model, 0).expect("minlen-0");
    assert_eq!(mss.best, top1.items[0]);
    assert_eq!(mss.best, min0.best);
    let thr = above_threshold(&seq, &model, mss.best.chi_square - 1e-6).expect("threshold");
    assert!(thr
        .items
        .iter()
        .any(|s| s.start == mss.best.start && s.end == mss.best.end));
}

#[test]
fn deterministic_results_across_runs() {
    let mut rng = seeded_rng(1500);
    let model = Model::uniform(2).expect("model");
    let seq = generate_iid(600, &model, &mut rng).expect("generation");
    let a = find_mss(&seq, &model).expect("run a");
    let b = find_mss(&seq, &model).expect("run b");
    assert_eq!(a.best, b.best);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn alphabet_mismatch_rejected_everywhere() {
    let seq = Sequence::from_symbols(vec![0, 1, 0, 1], 2).expect("sequence");
    let wrong = Model::uniform(3).expect("model");
    assert!(find_mss(&seq, &wrong).is_err());
    assert!(top_t(&seq, &wrong, 2).is_err());
    assert!(above_threshold(&seq, &wrong, 1.0).is_err());
    assert!(mss_min_length(&seq, &wrong, 1).is_err());
    assert!(baseline::trivial::find_mss(&seq, &wrong).is_err());
    assert!(baseline::arlm::find_mss(&seq, &wrong).is_err());
    assert!(baseline::agmm::find_mss(&seq, &wrong).is_err());
    assert!(baseline::blocked::find_mss(&seq, &wrong).is_err());
    assert!(find_mss_parallel(&seq, &wrong, 2).is_err());
}
