//! End-to-end pipelines across the workspace crates:
//! generate → encode → estimate → mine → p-value.

use sigstr::core::{find_mss, markov, Model};
use sigstr::data::{baseball, encode_updown, stocks, updown_model, Date};
use sigstr::gen::anomaly::background_with_anomaly;
use sigstr::gen::markov::generate_binary_persistence;
use sigstr::gen::walk::{generate_prices, Regime};
use sigstr::gen::{seeded_rng, StringKind};
use sigstr::stats::chi2;

#[test]
fn anomaly_recovery_pipeline() {
    // gen: background + planted anomaly → core: MSS → stats: p-value.
    let mut rng = seeded_rng(42);
    let background = Model::uniform(4).expect("model");
    let hot = Model::from_probs(vec![0.70, 0.10, 0.10, 0.10]).expect("model");
    let (seq, planted) =
        background_with_anomaly(8_000, &background, &hot, 400, &mut rng).expect("injection");
    let mss = find_mss(&seq, &background).expect("mining");
    assert!(planted.jaccard(mss.best.start, mss.best.end) > 0.3);
    let p = mss.best.p_value(4);
    assert!(
        p < 1e-8,
        "planted anomaly should be wildly significant, p = {p}"
    );
}

#[test]
fn price_walk_pipeline() {
    // gen::walk → data::encode → core::mss: the drift regime surfaces.
    let mut rng = seeded_rng(43);
    let regime = Regime {
        start: 2_000,
        end: 2_600,
        up_prob: 0.80,
    };
    let series = generate_prices(6_000, 100.0, 0.01, 0.5, &[regime], &mut rng);
    let updown = encode_updown(&series.prices).expect("encode");
    let model = updown_model(&series.prices).expect("estimate");
    let mss = find_mss(&updown, &model).expect("mining");
    let overlap = mss
        .best
        .end
        .min(2_600)
        .saturating_sub(mss.best.start.max(2_000));
    assert!(
        overlap > 200,
        "mined {}..{} misses regime 2000..2600",
        mss.best.start,
        mss.best.end
    );
}

#[test]
fn null_string_mss_is_insignificant_at_strict_level() {
    // A pure null string's MSS should NOT clear a very strict
    // significance bar (its X²_max ≈ 2 ln n ≈ 17.7 at n = 7000, far from
    // the χ²(1) value needed for p < 1e-8 ≈ 33).
    let mut rng = seeded_rng(44);
    let seq = StringKind::Null
        .generate(7_000, 2, &mut rng)
        .expect("generation");
    let model = Model::uniform(2).expect("model");
    let mss = find_mss(&seq, &model).expect("mining");
    assert!(
        mss.best.chi_square < chi2::quantile(1.0 - 1e-8, 1.0),
        "null string produced an absurdly significant MSS: {}",
        mss.best.chi_square
    );
}

#[test]
fn markov_extension_pipeline() {
    // gen::markov (biased RNG) → core::markov (transition-level MSS).
    let mut rng = seeded_rng(45);
    let seq = generate_binary_persistence(1_500, 0.75, &mut rng).expect("generation");
    let null = markov::TransitionModel::binary_persistence(0.5).expect("model");
    let result = markov::find_mss_markov(&seq, &null).expect("mining");
    assert!(
        result.p_value(&null) < 1e-6,
        "persistent chain should be significant under the fair-transition null"
    );
    // The i.i.d. test is *blind* to this bias (marginals stay balanced):
    // the Markov extension sees what Problem 1 cannot.
    let counts = seq.count_vector(0, seq.len());
    let iid_x2 = sigstr::core::chi_square_counts(&counts, &Model::uniform(2).expect("model"));
    assert!(
        chi2::sf(iid_x2, 1.0) > 1e-4,
        "marginals unexpectedly skewed"
    );
}

#[test]
fn baseball_dates_round_trip_through_report_range() {
    let ds = baseball::generate(&mut seeded_rng(46));
    let era = ds.index_range(
        Date::new(1924, 4, 17).expect("date"),
        Date::new(1933, 6, 6).expect("date"),
    );
    assert!(!era.is_empty());
    // Dates of the returned range are inside the queried window.
    assert!(ds.date_of(era.start) >= Date::new(1924, 4, 17).expect("date"));
    assert!(ds.date_of(era.end - 1) <= Date::new(1933, 6, 6).expect("date"));
}

#[test]
fn stock_dataset_full_mine_produces_finite_pvalues() {
    let ds = stocks::generate(&stocks::ibm_spec(), &mut seeded_rng(47));
    let mss = find_mss(&ds.updown, &ds.model).expect("mining");
    let p = mss.best.p_value(2);
    assert!((0.0..1.0).contains(&p));
    assert!(
        mss.best.chi_square > 20.0,
        "planted regimes should dominate the null ceiling"
    );
}

#[test]
fn grid_extension_smoke() {
    // 2-D extension: a hot block in a random grid is found and matches
    // the exhaustive scan.
    let mut rng = seeded_rng(48);
    let rows = 14usize;
    let cols = 15usize;
    let mut cells = vec![0u8; rows * cols];
    for cell in cells.iter_mut() {
        *cell = u8::from(rand::Rng::gen::<bool>(&mut rng));
    }
    for r in 4..9 {
        for c in 5..12 {
            cells[r * cols + c] = 1;
        }
    }
    let grid = sigstr::core::grid::Grid::from_cells(rows, cols, cells, 2).expect("grid");
    let model = Model::uniform(2).expect("model");
    let fast = sigstr::core::grid::find_mss_2d(&grid, &model).expect("pruned");
    let slow = sigstr::core::grid::trivial_mss_2d(&grid, &model).expect("trivial");
    assert!((fast.best.chi_square - slow.best.chi_square).abs() < 1e-9);
    // The found rectangle overlaps the hot block.
    assert!(fast.best.row_start < 9 && fast.best.row_end > 4);
    assert!(fast.best.col_start < 12 && fast.best.col_end > 5);
}
