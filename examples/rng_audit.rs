//! Cryptology application (paper §7.4): audit a random number generator
//! for hidden correlation between adjacent symbols.
//!
//! A perfect binary RNG repeats the previous symbol with probability
//! exactly 0.5. A biased one (persistence p > 0.5) produces strings whose
//! `X²_max` exceeds the `≈ 2 ln n` benchmark of a truly random string —
//! even when only part of the stream is biased.
//!
//! ```sh
//! cargo run --release --example rng_audit
//! ```

use sigstr::core::{find_mss, Model, Sequence};
use sigstr::gen::markov::generate_binary_persistence;
use sigstr::gen::seeded_rng;

fn audit(label: &str, seq: &Sequence, benchmark: f64) {
    let model = Model::uniform(2).expect("valid model");
    let result = find_mss(seq, &model).expect("mining succeeds");
    let verdict = if result.best.chi_square > 1.25 * benchmark {
        "REJECT (hidden correlation)"
    } else {
        "looks random"
    };
    println!(
        "{label:<28} X²_max = {:>8.2}  benchmark ≈ {benchmark:>6.2}  -> {verdict}",
        result.best.chi_square
    );
}

fn main() {
    let n = 20_000usize;
    // The paper's benchmark: for a null string X²_max ≈ 2 ln n.
    let benchmark = 2.0 * (n as f64).ln();
    println!("auditing binary streams of n = {n} (benchmark 2 ln n = {benchmark:.2})\n");

    // Table-2 sweep: persistence p ∈ {0.50, 0.55, 0.60, 0.80}.
    for (i, &p) in [0.50f64, 0.55, 0.60, 0.80].iter().enumerate() {
        let mut rng = seeded_rng(100 + i as u64);
        let stream = generate_binary_persistence(n, p, &mut rng).expect("generation");
        audit(&format!("persistence p = {p:.2}"), &stream, benchmark);
    }

    // The subtle case the paper highlights: only a *substring* of the
    // stream is biased. Whole-string tests dilute the signal; the MSS
    // still finds it.
    let mut rng = seeded_rng(999);
    let good = generate_binary_persistence(n, 0.5, &mut rng).expect("generation");
    let bad_patch = generate_binary_persistence(2_000, 0.9, &mut rng).expect("generation");
    let mut symbols = good.symbols().to_vec();
    symbols[12_000..14_000].copy_from_slice(bad_patch.symbols());
    let spliced = Sequence::from_symbols(symbols, 2).expect("valid symbols");

    println!();
    audit("spliced (10% biased patch)", &spliced, benchmark);
    let model = Model::uniform(2).expect("valid model");
    let mss = find_mss(&spliced, &model).expect("mining succeeds");
    println!(
        "flagged window: [{}, {}) — planted bias at [12000, 14000)",
        mss.best.start, mss.best.end
    );

    // Whole-string frequency test would pass: the counts stay balanced.
    let counts = spliced.count_vector(0, spliced.len());
    let whole = sigstr::core::chi_square_counts(&counts, &model);
    println!(
        "whole-string X² = {whole:.2} (a plain frequency test misses the bias; the MSS does not)"
    );
}
