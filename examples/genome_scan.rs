//! Computational-biology application (paper §1: "assessing the over
//! representation of exceptional patterns" and mutation-rate shifts):
//! find compositionally anomalous regions in a DNA sequence.
//!
//! A synthetic genome over {A, C, G, T} carries a planted GC-rich island
//! (e.g. a CpG island or a horizontally transferred segment). The MSS
//! pinpoints it; the family-wise correction tells us whether the call
//! would survive multiple testing; the streaming miner shows the same
//! analysis working as the sequence is read base by base.
//!
//! ```sh
//! cargo run --release --example genome_scan
//! ```

use sigstr::core::significance::assess;
use sigstr::core::streaming::StreamingMiner;
use sigstr::core::{CountsLayout, Engine, Model};
use sigstr::gen::anomaly::inject_segment;
use sigstr::gen::{generate_iid, seeded_rng};

const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

fn main() {
    let mut rng = seeded_rng(1859);

    // Background genome: AT-rich, as in many bacterial genomes.
    let background = Model::from_probs(vec![0.32, 0.18, 0.18, 0.32]).expect("valid model");
    let genome = generate_iid(60_000, &background, &mut rng).expect("generation");

    // Planted GC-rich island of 1.2 kb.
    let island_model = Model::from_probs(vec![0.15, 0.35, 0.35, 0.15]).expect("valid model");
    let (genome, island) =
        inject_segment(&genome, 41_000..42_200, &island_model, &mut rng).expect("injection");

    println!("genome: {} bases over {:?}", genome.len(), BASES);
    println!("planted GC island: [{}, {})\n", island.start, island.end);

    // Offline scan through the reusable engine. `CountsLayout::Auto`
    // picks the count-index layout by footprint: flat for this 60 kb
    // genome, the two-level blocked table (4-8x smaller, bit-identical)
    // once inputs reach chromosome scale.
    let engine = Engine::with_options(&genome, background.clone(), 0, CountsLayout::Auto)
        .expect("engine builds");
    println!(
        "count index: {:?} layout, {:.1} KiB",
        engine.layout(),
        engine.index_bytes() as f64 / 1024.0
    );
    let mss = engine.mss().expect("mining succeeds");
    let region = mss.best;
    println!(
        "most significant region: [{}, {})  ({} bp)  X² = {:.1}",
        region.start,
        region.end,
        region.len(),
        region.chi_square
    );
    let gc = {
        let counts = genome.count_vector(region.start, region.end);
        f64::from(counts[1] + counts[2]) / region.len() as f64
    };
    println!(
        "GC content of region: {:.1}% (background expectation {:.1}%)",
        100.0 * gc,
        100.0 * (background.p(1) + background.p(2))
    );

    // Family-wise significance: the scan tested millions of regions.
    let verdict = assess(&region, genome.len(), 4);
    println!(
        "p-value: per-region {:.2e}, family-wise {:.2e} over ~{} effective tests",
        verdict.p_single, verdict.p_family, verdict.m_effective as u64
    );
    println!(
        "overlap with planted island: {:.0}%\n",
        100.0 * island.jaccard(region.start, region.end)
    );

    // The same analysis, streaming base by base: the island is flagged
    // as soon as enough of it has been read.
    let mut miner = StreamingMiner::new(background.clone());
    let mut flagged_at = None;
    for (position, &base) in genome.symbols().iter().enumerate() {
        miner.push(base).expect("symbol in alphabet");
        if flagged_at.is_none() {
            if let Some(best) = miner.best() {
                // Flag once a region inside the stream clears a strict bar.
                if best.chi_square > 60.0 && best.start >= island.start.saturating_sub(500) {
                    flagged_at = Some((position, best));
                }
            }
        }
    }
    match flagged_at {
        Some((position, best)) => println!(
            "streaming: island flagged after reading base {} (region [{}, {}), X² = {:.1})",
            position, best.start, best.end, best.chi_square
        ),
        None => println!("streaming: island not flagged (threshold too strict)"),
    }
}
