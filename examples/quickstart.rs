//! Quickstart: find the most significant substring of a string.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sigstr::core::{find_mss, top_t, Model, Sequence};

fn main() {
    // A binary string: mostly alternating, with a suspicious run of ones.
    let text = "0101001011010111111111111111101001010010110100101";
    let symbols: Vec<u8> = text.bytes().map(|b| b - b'0').collect();
    let seq = Sequence::from_symbols(symbols, 2).expect("valid symbols");

    // Null hypothesis: each character is an independent fair coin flip.
    let model = Model::uniform(2).expect("valid model");

    // Problem 1: the most significant substring.
    let result = find_mss(&seq, &model).expect("mining succeeds");
    let best = result.best;
    println!("string : {text}");
    println!(
        "MSS    : [{}, {})  ->  \"{}\"",
        best.start,
        best.end,
        &text[best.start..best.end]
    );
    println!("X²     : {:.3}", best.chi_square);
    println!(
        "p-value: {:.3e}  (chi-square approximation, k - 1 = 1 df)",
        best.p_value(2)
    );
    println!(
        "scan   : examined {} of {} substrings ({} skipped by the chain-cover bound)",
        result.stats.examined,
        seq.len() * (seq.len() + 1) / 2,
        result.stats.skipped,
    );

    // Problem 2: the top-3 substrings.
    println!("\ntop-3 substrings:");
    let top = top_t(&seq, &model, 3).expect("mining succeeds");
    for (rank, item) in top.items.iter().enumerate() {
        println!(
            "  #{}  [{:>2}, {:>2})  X² = {:>7.3}  p = {:.2e}",
            rank + 1,
            item.start,
            item.end,
            item.chi_square,
            item.p_value(2)
        );
    }
}
