//! Sports rivalry analysis (paper §7.5.1): find the dominance eras of a
//! century-long rivalry.
//!
//! ```sh
//! cargo run --release --example sports_streaks
//! ```

use sigstr::core::baseline;
use sigstr::core::{find_mss, Model};
use sigstr::data::baseball;
use sigstr::gen::seeded_rng;

fn main() {
    // The synthetic Yankees–Red-Sox rivalry: 2086 games (1901–2010) with
    // the paper's Table-3 eras planted at their historical dates.
    let ds = baseball::generate(&mut seeded_rng(0xBA5E_BA11));
    let outcomes = &ds.rivalry.outcomes;
    println!(
        "rivalry: {} games, overall Yankee win ratio {:.2}%\n",
        outcomes.len(),
        100.0 * ds.rivalry.win_ratio()
    );

    let model = Model::estimate(outcomes).expect("both outcomes occur");

    // The most dominant patch, by all four algorithms — and how long each
    // takes.
    println!(
        "{:<8} {:>8} {:<12} {:<12} {:>7} {:>9}",
        "algo", "X²", "start", "end", "games", "time"
    );
    type Algo = (
        &'static str,
        fn(&sigstr::core::Sequence, &Model) -> sigstr::core::Result<sigstr::core::MssResult>,
    );
    let algos: Vec<Algo> = vec![
        ("trivial", baseline::trivial::find_mss),
        ("ours", find_mss),
        ("arlm", baseline::arlm::find_mss),
        ("agmm", baseline::agmm::find_mss),
    ];
    for (name, algo) in algos {
        let started = std::time::Instant::now();
        let result = algo(outcomes, &model).expect("mining succeeds");
        let elapsed = started.elapsed();
        println!(
            "{:<8} {:>8.2} {:<12} {:<12} {:>7} {:>8.2?}",
            name,
            result.best.chi_square,
            ds.date_of(result.best.start).to_string(),
            ds.date_of(result.best.end - 1).to_string(),
            result.best.len(),
            elapsed
        );
    }

    // Detail of the winner.
    let mss = find_mss(outcomes, &model).expect("mining succeeds");
    let wins = outcomes.count_vector(mss.best.start, mss.best.end)[1];
    println!(
        "\ndominant era: {} .. {} — {} wins in {} games ({:.1}%), p = {:.2e}",
        ds.date_of(mss.best.start),
        ds.date_of(mss.best.end - 1),
        wins,
        mss.best.len(),
        100.0 * f64::from(wins) / mss.best.len() as f64,
        mss.best.p_value(2)
    );
}
