//! Intrusion detection over an event stream (paper §1's intrusion
//! motivation, refs [26, 27]).
//!
//! A server emits events from a small alphabet (requests, auth successes,
//! auth failures, errors). Under normal operation the mix is stable; a
//! brute-force episode inflates auth failures over a contiguous window.
//! The threshold variant (Problem 3) surfaces every window whose event
//! mix is significantly off-profile, and the MSS pinpoints the attack.
//!
//! ```sh
//! cargo run --release --example intrusion_detection
//! ```

use sigstr::core::{CountsLayout, Engine, Model};
use sigstr::gen::anomaly::inject_segment;
use sigstr::gen::{generate_iid, seeded_rng};
use sigstr::stats::pearson::threshold_for_significance;

const EVENTS: [&str; 4] = ["REQ", "AUTH_OK", "AUTH_FAIL", "ERROR"];

fn main() {
    let mut rng = seeded_rng(2024);

    // Normal profile: lots of requests, few failures.
    let profile = Model::from_probs(vec![0.70, 0.20, 0.07, 0.03]).expect("valid profile");
    let baseline = generate_iid(20_000, &profile, &mut rng).expect("generation");

    // A brute-force episode: auth failures dominate for 400 events.
    let attack_profile = Model::from_probs(vec![0.15, 0.05, 0.75, 0.05]).expect("valid profile");
    let (stream, planted) =
        inject_segment(&baseline, 9_300..9_700, &attack_profile, &mut rng).expect("injection");

    println!(
        "event stream: {} events over alphabet {EVENTS:?}",
        stream.len()
    );
    println!(
        "planted attack window: [{}, {})\n",
        planted.start, planted.end
    );

    // One engine serves both queries below. `CountsLayout::Auto` keeps
    // this 20k-event stream on the flat count index and switches to the
    // two-level blocked table (4-8x smaller, bit-identical) when a
    // production log reaches tens of millions of events.
    let engine =
        Engine::with_options(&stream, profile.clone(), 0, CountsLayout::Auto).expect("engine");
    println!(
        "count index: {:?} layout, {:.1} KiB\n",
        engine.layout(),
        engine.index_bytes() as f64 / 1024.0
    );

    // The MSS pinpoints the attack.
    let mss = engine.mss().expect("mining succeeds");
    println!(
        "most significant window: [{}, {})  X² = {:.1}  p = {:.2e}",
        mss.best.start,
        mss.best.end,
        mss.best.chi_square,
        mss.best.p_value(profile.k())
    );
    println!(
        "overlap with planted window: {:.0}%",
        100.0 * planted.jaccard(mss.best.start, mss.best.end)
    );

    // Event mix inside the flagged window vs the profile.
    let counts = stream.count_vector(mss.best.start, mss.best.end);
    println!("\nwindow event mix vs profile:");
    for (event, (&count, &p)) in EVENTS.iter().zip(counts.iter().zip(profile.probs())) {
        let observed = f64::from(count) / mss.best.len() as f64;
        println!(
            "  {event:>9}: observed {observed:>6.1}%  expected {:>6.1}%",
            p * 100.0
        );
    }

    // Problem 3: every window significant at the 10⁻⁶ level. Windows
    // overlapping the attack dominate; report the count.
    let alpha0 = threshold_for_significance(1e-6, profile.k());
    let windows = engine.above_threshold(alpha0).expect("mining succeeds");
    let overlapping = windows
        .items
        .iter()
        .filter(|w| w.start < planted.end && w.end > planted.start)
        .count();
    println!(
        "\nthreshold scan (alpha0 = {:.1}, p < 1e-6): {} significant windows, {} overlap the attack",
        alpha0,
        windows.items.len(),
        overlapping
    );
    println!(
        "scan examined {} substrings out of {}",
        windows.stats.examined,
        stream.len() * (stream.len() + 1) / 2
    );
}
