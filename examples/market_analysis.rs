//! Stock-market period mining (paper §7.5.2).
//!
//! Pipeline exactly as in the paper: encode daily closes as an up/down
//! binary string, estimate the empirical Bernoulli model, then mine the
//! statistically significant periods — booms and crashes that the random
//! walk hypothesis cannot explain.
//!
//! ```sh
//! cargo run --release --example market_analysis
//! ```

use sigstr::core::score::scored_cmp;
use sigstr::core::{above_threshold, find_mss};
use sigstr::data::stocks::{generate, sp500_spec};
use sigstr::gen::seeded_rng;

fn main() {
    // The synthetic S&P 500: 15600 trading days from 1950 with the
    // paper's Table-5 drift regimes planted at their historical dates.
    let spec = sp500_spec();
    let ds = generate(&spec, &mut seeded_rng(7));
    println!(
        "{}: {} trading days, {} … {}",
        spec.name,
        ds.updown.len(),
        ds.calendar[0],
        ds.calendar.last().expect("non-empty calendar")
    );
    println!(
        "empirical up-day probability: {:.4} (the paper's null model)\n",
        ds.model.p(1)
    );

    // The single most significant period.
    let mss = find_mss(&ds.updown, &ds.model).expect("mining succeeds");
    println!(
        "most significant period: {} .. {}  X² = {:.2}  p = {:.2e}  change {:+.1}%",
        ds.date_of_move(mss.best.start),
        ds.date_of_move(mss.best.end - 1),
        mss.best.chi_square,
        mss.best.p_value(2),
        100.0 * ds.change(mss.best.start..mss.best.end),
    );

    // All distinct periods significant beyond the null ceiling
    // (X²_max of a null string ≈ 2 ln n ≈ 19.3).
    let alpha = 2.2 * (ds.updown.len() as f64).ln();
    let mut periods = above_threshold(&ds.updown, &ds.model, alpha)
        .expect("mining succeeds")
        .items;
    periods.sort_by(|a, b| scored_cmp(b, a));
    // Greedy containment dedupe (same post-processing as the repro
    // harness).
    let mut distinct: Vec<sigstr::core::Scored> = Vec::new();
    for p in periods {
        let nested = distinct.iter().any(|d| {
            let inter = d.end.min(p.end).saturating_sub(d.start.max(p.start));
            inter as f64 / p.len().min(d.len()) as f64 > 0.5
        });
        if !nested {
            distinct.push(p);
        }
        if distinct.len() == 6 {
            break;
        }
    }
    println!("\ndistinct significant periods (alpha0 = {alpha:.1}):");
    println!(
        "{:<12} {:<12} {:>9} {:>9} {:>8}",
        "start", "end", "X²", "change", "days"
    );
    for p in &distinct {
        println!(
            "{:<12} {:<12} {:>9.2} {:>8.1}% {:>8}",
            ds.date_of_move(p.start).to_string(),
            ds.date_of_move(p.end - 1).to_string(),
            p.chi_square,
            100.0 * ds.change(p.start..p.end),
            p.len()
        );
    }
    println!("\n(the planted regimes: 1953–55 boom, 1994–95 rally, 1973–74 and 2000–03 crashes)");
}
