//! Offline shim for the subset of `proptest` used by this workspace:
//! range strategies, `collection::vec`, `prop_map`, the `proptest!` macro
//! and the `prop_assert*` / `prop_assume!` family.
//!
//! Differences from upstream: no shrinking (failures report the generated
//! case via the panic message only), and the generation stream is the
//! shim's own deterministic xorshift — seeded per test from the test name
//! so failures are reproducible run to run.

#![warn(clippy::all)]

/// Deterministic generation stream for one test function.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic stream derived from a label (the test name).
    pub fn from_label(label: &str) -> Self {
        let mut state = 0xCAFE_F00D_D15E_A5E5u64;
        for byte in label.bytes() {
            state = (state ^ u64::from(byte)).wrapping_mul(0x100_0000_01B3);
        }
        Self { state: state | 1 }
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..span` (`span > 0`).
    pub fn next_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// `prop_assert*` failed; the test fails with this message.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator. Unlike upstream there is no shrinking tree — a
/// strategy just draws values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.next_below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Always produces a clone of the given value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi_exclusive: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *range.start(),
                hi_exclusive: *range.end() + 1,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a `proptest!`-based test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Reject the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Assert inside a proptest case, failing the test with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Run the body against `cases` accepted random cases per test function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(50).max(1_000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases in {} ({} attempts for {} accepted)",
                    stringify!($name), attempts, accepted
                );
                let case = (|rng: &mut $crate::TestRng| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $( let $arg = $crate::Strategy::gen_value(&($strategy), rng); )*
                    $body
                    ::core::result::Result::Ok(())
                })(&mut rng);
                match case {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!("proptest case {} failed after {} cases: {}",
                               stringify!($name), accepted, message);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_label("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::from_label("vec");
        let strat = prop::collection::vec(0u8..4, 3..9);
        for _ in 0..500 {
            let v = strat.gen_value(&mut rng);
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn map_strategy_applies_function() {
        let mut rng = TestRng::from_label("map");
        let strat = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(strat.gen_value(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_runs_and_assumes(x in 0u32..100, y in 0.0f64..1.0) {
            prop_assume!(x > 10);
            prop_assert!(x > 10, "x = {}", x);
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in prop::collection::vec(0u64..5, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }
}
