//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: `Rng::gen` / `Rng::gen_range`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with equivalent
//! statistical quality for test workloads. Seeded experiments are
//! deterministic across runs of this shim; they will differ from runs
//! against the registry `rand`.

#![warn(clippy::all)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the generator's raw bits (the shim's
/// stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: maps 64 random bits onto `0..span`
/// with bias below 2⁻⁶⁴ — indistinguishable for test workloads.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&ones), "got {ones}");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
