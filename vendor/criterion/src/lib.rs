//! Offline shim for the subset of the `criterion` API used by this
//! workspace's benches (`harness = false` benchmarks).
//!
//! Measurement model: each benchmark is calibrated to a per-sample batch
//! of iterations targeting [`TARGET_SAMPLE_NANOS`], then `sample_size`
//! batches are timed and the median per-iteration time reported. No
//! statistical analysis, plotting or state directory — just stable
//! wall-clock medians printed to stdout, which is what the perf
//! acceptance gates in CI consume.

#![warn(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample time budget the calibrator aims for.
const TARGET_SAMPLE_NANOS: u64 = 40_000_000;

/// Opaque value barrier (re-export of the standard hint).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Identifier with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (recorded, reported as elements/second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point owned by `criterion_main!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_named(String::new(), f);
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.bench_named(id.to_string(), f);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_named(id.to_string(), |b| f(b, input));
        self
    }

    fn bench_named<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        report(&label, &mut bencher.samples, self.throughput);
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure a payload: calibrate an iteration batch, then record
    /// `sample_size` timed batches (per-iteration nanoseconds).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // Calibration: grow the batch until it costs ~1/8 of the target,
        // then scale to the target.
        let mut batch: u64 = 1;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(payload());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_nanos(TARGET_SAMPLE_NANOS / 8) || batch >= (1 << 30) {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 4;
        };
        let per_sample =
            ((TARGET_SAMPLE_NANOS as f64 / per_iter_estimate.max(0.5)) as u64).clamp(1, 1 << 32);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(payload());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Measure with a per-batch setup closure (subset of `iter_batched`):
    /// setup output feeds the routine; only the routine is timed.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size.max(5) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn report(label: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.1} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MB/s", n as f64 / median * 1e3)
        }
        None => String::new(),
    };
    println!(
        "{label:<44} median {}  [{} .. {}]{rate}",
        fmt_nanos(median),
        fmt_nanos(min),
        fmt_nanos(max)
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:>8.1} ns")
    } else if ns < 1e6 {
        format!("{:>8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:>8.2} ms", ns / 1e6)
    } else {
        format!("{:>8.2} s ", ns / 1e9)
    }
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (`--bench`); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
        assert_eq!(BenchmarkId::new("mss", 4096).to_string(), "mss/4096");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn nanos_formatting_scales() {
        assert!(fmt_nanos(12.0).contains("ns"));
        assert!(fmt_nanos(12_000.0).contains("µs"));
        assert!(fmt_nanos(12_000_000.0).contains("ms"));
    }
}
