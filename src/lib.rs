//! # sigstr — mining statistically significant substrings
//!
//! Facade crate re-exporting the `sigstr` workspace: a production-quality
//! Rust reproduction of *Sachan & Bhattacharya, "Mining Statistically
//! Significant Substrings using the Chi-Square Statistic" (PVLDB 5(10),
//! 2012)*.
//!
//! See the individual crates for details:
//!
//! * [`core`] — the reusable query [`core::Engine`] (index once, serve
//!   every problem variant, range-restricted shards, batches), persistent
//!   index snapshots ([`core::snapshot`]: build once on disk, load with
//!   bulk reads), the one-shot mining algorithms (MSS, top-t, threshold,
//!   min-length), baselines (trivial, blocked, ARLM, AGMM), the
//!   persistent-pool parallel scan, and the Markov-null / 2-D grid
//!   extensions.
//! * [`stats`] — chi-square and friends: special functions, distributions,
//!   p-values, concentration bounds.
//! * [`gen`] — workload generators (null/geometric/harmonic/Zipf/Markov
//!   strings, anomaly injection, random walks).
//! * [`data`] — dataset substrate (series encoders, calendar mapping, the
//!   synthetic baseball and stock datasets used by the paper reproduction).

pub use sigstr_core as core;
pub use sigstr_data as data;
pub use sigstr_gen as gen;
pub use sigstr_stats as stats;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use sigstr_core::{
        above_threshold, baseline, find_mss, find_mss_parallel, mss_max_length, mss_min_length,
        top_t, Answer, Batch, BlockedCounts, CountsLayout, Engine, Model, PrefixCounts, Query,
        Scored, Sequence,
    };
    pub use sigstr_stats::chi2;
}
